// fne::ScenarioRunner — executes Scenarios (DESIGN.md §6, §8).
//
// A runner is bound to one Scenario: it resolves α/ε once and reads its
// graph and engines from the process-wide EngineCache (api/executor.hpp).
// The runner owns one PRIMARY engine lease for the single-shot surfaces
// (run_once, run_churn) whose workspace — Krylov basis, BFS queues,
// degree tables, cached Fiedler vector — survives across calls; batch
// surfaces (run_all, sweeps, campaign jobs) lease one engine per job so
// the buffers amortize across every scenario in the process that shares
// the topology.
//
// Determinism contract: a ScenarioRunner is a pure function of its
// Scenario.  Repetition r derives its fault seed from (scenario.seed, r)
// via splitmix64 and its finder seed likewise, so the same Scenario run
// twice — or on two runners — produces bit-identical ScenarioRuns.
//
// Parallel execution (DESIGN.md §7/§8): run_all(threads) and
// sweep_fault_param(..., threads) shard repetitions / sweep points over
// ExecutorPool.  Seeds are derived per REPETITION, never per thread, and
// every job runs on an engine whose warm state was dropped at lease time
// (EngineCache contract), so each ScenarioRun is a pure function of
// (scenario, rep): outputs are bit-identical for ANY thread count and
// any cache-hit pattern.  Single-rep warm-engine use (run_once,
// run_churn) keeps the cross-run Fiedler cache on the primary lease —
// churn rounds are serially dependent anyway and profit most from it.
//
// Monotone sweeps (DESIGN.md §8): for fault models whose registry entry
// declares the swept param monotone (same seed, larger value -> alive
// mask shrinks as a SUBSET), SweepMode::Monotone chains the sweep: point
// j starts the cull loop from survivors(j-1) ∩ alive(j) instead of
// alive(j).  The chain is one serial job on one lease, so campaign
// placement cannot reorder it.  Every culled set still satisfies its
// cull condition at cull time (verify_prune_trace certifies a monotone
// run like any other); in the paper's subcritical sweep regimes the
// chained survivors are additionally bit-identical to the independent
// points — tests and bench_s4_campaign parity-check that in
// deterministic mode.
#pragma once

#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "analysis/fragmentation.hpp"
#include "api/executor.hpp"
#include "api/scenario.hpp"
#include "expansion/bracket.hpp"
#include "faults/churn.hpp"
#include "prune/engine.hpp"
#include "prune/verify.hpp"
#include "util/table.hpp"

namespace fne {

/// One executed repetition of a Scenario.
struct ScenarioRun {
  int repetition = 0;
  std::uint64_t fault_seed = 0;
  std::uint64_t finder_seed = 0;  ///< cut-finder seed used; replays via prune()/prune2()
  vid faults = 0;          ///< n - |fault-model survivors|
  VertexSet alive;         ///< pre-prune engine input (== fault-model survivors,
                           ///< except monotone sweep points: chained start mask)
  PruneResult prune;
  double threshold = 0.0;  ///< α·ε actually used
  FragmentationProfile fragmentation;           ///< of prune.survivors (if requested)
  std::optional<ExpansionBracket> expansion;    ///< of prune.survivors (if requested)
  std::optional<TraceVerification> trace;       ///< replay certificate (if requested)
  /// Registered-metric results, one per MetricsSpec request in request
  /// order (api/metrics.hpp).  Payloads are deterministic — computed from
  /// the run and a per-(request, repetition) derived seed — so campaign
  /// reports splice them into the thread-count-independent payload.
  std::vector<MetricRecord> metrics;
  /// Engine work this run's prune performed (stats delta around the
  /// engine.run call).  Placement- and cache-history-independent, so the
  /// campaign layer folds per-entry stats as Σ runs.engine — which is
  /// what lets a store-served run (store/result_store.hpp) reproduce the
  /// deterministic report payload without re-running the engine.
  EngineStats engine;
  double millis = 0.0;     ///< prune time only (topology/fault excluded)

  [[nodiscard]] double survivor_fraction(vid n) const {
    return n == 0 ? 0.0 : static_cast<double>(prune.survivors.count()) / n;
  }
};

/// How sweep_fault_param walks its values (see header comment).
enum class SweepMode {
  kIndependent,  ///< every point prunes the full fault-model mask
  kMonotone,     ///< chained: point j starts from survivors(j-1) ∩ alive(j)
};

/// One churn round executed through the runner's persistent engine.
struct ChurnRoundRun {
  ChurnStep churn;         ///< the raw process observables (parity with simulate_churn)
  vid survivors = 0;       ///< |H| after re-pruning this round's alive mask
  vid culled = 0;
  int iterations = 0;
  std::uint64_t finder_seed = 0;  ///< cut-finder seed used this round
  double prune_millis = 0.0;
};

struct ChurnRunTrace {
  std::vector<ChurnRoundRun> rounds;
  VertexSet final_alive;       ///< churn process state after the last round
  VertexSet final_survivors;   ///< prune survivors of the last round
  [[nodiscard]] double total_prune_millis() const;
};

/// The graph-build seed a ScenarioRunner derives from scenario.seed
/// (domain-0 splitmix64 stream).  Exposed for the result store's content
/// keys (store/key.hpp), which name the build seed explicitly.
[[nodiscard]] std::uint64_t scenario_build_seed(const Scenario& scenario);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario);

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

  /// Work accrued on the runner's PRIMARY engine lease (run_once,
  /// run_churn, single-threaded batch runs).  Deltas since the lease was
  /// taken, so a cache-served engine's prior history never shows up.
  [[nodiscard]] EngineStats engine_stats() const {
    return primary_ ? primary_.stats_delta() : EngineStats{};
  }

  /// Cumulative telemetry across the primary engine AND every per-job
  /// lease of past batch runs — the number to report when attributing
  /// total work regardless of thread count or cache-hit pattern.
  [[nodiscard]] EngineStats total_engine_stats() const {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    EngineStats total = engine_stats();
    total += pool_stats_;
    return total;
  }

  /// Execute repetition `rep`: inject faults, prune through the primary
  /// engine, measure the requested metrics.  Keeps the engine's cross-run
  /// warm cache (legacy single-shot semantics).
  [[nodiscard]] ScenarioRun run_once(int rep = 0);

  /// Execute repetition `rep` on a freshly leased cache engine (warm
  /// state dropped at lease): a pure function of (scenario, fault, rep),
  /// safe to call concurrently from any number of threads.  This is the
  /// unit of work a CampaignRunner schedules.
  [[nodiscard]] ScenarioRun run_isolated(const FaultSpec& fault, int rep);

  /// run_isolated, but metric requests whose registry entry declares
  /// split_job are NOT computed: their run.metrics slot holds a
  /// placeholder {name, "", ""} for a later compute_metric_request to
  /// fill.  The campaign/dist schedulers use this to run expensive
  /// metrics as separate (entry, rep, request) jobs; filling every
  /// placeholder reproduces run_isolated's result field-for-field.
  [[nodiscard]] ScenarioRun run_isolated_deferred(const FaultSpec& fault, int rep);

  /// Compute metric request `request_index` for a completed run, with the
  /// SAME derived seed the inline path uses — the record is bit-identical
  /// whether it was computed inline, deferred locally, or on a remote
  /// worker.  Pure and thread-safe.
  [[nodiscard]] MetricRecord compute_metric_request(const ScenarioRun& run,
                                                    std::size_t request_index) const;

  /// All scenario.repetitions, sharded over `threads` ExecutorPool
  /// workers (clamped to [1, repetitions]).  threads == 1 runs on the
  /// primary engine (warm state dropped per repetition); more lease one
  /// engine per job from the cache.  Either way every repetition is
  /// cache-isolated, so the returned runs are bit-identical for any
  /// thread count (see the determinism contract above).
  [[nodiscard]] std::vector<ScenarioRun> run_all(int threads = 1);

  /// Swap the fault process (topology, α/ε and engine state are kept —
  /// that is the point of the persistent engine).
  void set_fault(FaultSpec fault);

  /// Sweep one numeric fault param over `values`: one run per value at
  /// repetition 0's seed, sharded over `threads` workers like run_all.
  /// The runner's own fault spec is never mutated (each point runs a
  /// copy), so a bad key/value cannot poison later runs.
  /// SweepMode::kMonotone REQUIREs the fault model to declare `key`
  /// monotone (FaultModelRegistry) and `values` to be strictly
  /// ascending; the chain then runs as ONE serial job (threads ignored).
  [[nodiscard]] std::vector<ScenarioRun> sweep_fault_param(
      const std::string& key, std::span<const double> values, int threads = 1,
      SweepMode mode = SweepMode::kIndependent);

  /// Drive a churn process and re-prune EVERY round through the
  /// primary engine.  The fault stream is bit-identical to
  /// simulate_churn(graph(), options) — the scenario's fault spec is not
  /// used here.
  [[nodiscard]] ChurnRunTrace run_churn(const ChurnOptions& options);

  /// Render runs as a metrics table (one row per run; columns follow the
  /// scenario's MetricsSpec).  `label` names the first column.
  [[nodiscard]] Table metrics_table(std::span<const ScenarioRun> runs,
                                    const std::vector<std::string>& labels = {}) const;

 private:
  [[nodiscard]] PruneEngineOptions engine_options(std::uint64_t finder_seed) const;
  [[nodiscard]] PruneEngine& primary_engine();
  [[nodiscard]] EngineLease lease_engine() const;
  /// One repetition on an explicit engine and fault spec — the unit of
  /// work every surface reduces to.  Pure given (scenario, fault, rep)
  /// when the engine's warm state was dropped.  `chain_start` non-null
  /// intersects the fault-model mask with it before pruning (the
  /// monotone-sweep chaining hook); run.faults always counts the
  /// fault-model mask.
  [[nodiscard]] ScenarioRun run_point(PruneEngine& engine, const FaultSpec& fault, int rep,
                                      const VertexSet* chain_start = nullptr,
                                      bool defer_split_metrics = false) const;
  /// jobs[i] = (faults[i], reps[i]) -> out[i], over ExecutorPool.
  void run_pooled(std::span<const FaultSpec> faults, std::span<const int> reps,
                  std::span<ScenarioRun> out, int threads);
  [[nodiscard]] std::vector<ScenarioRun> sweep_monotone(const std::string& key,
                                                        std::span<const double> values);
  void fold_pool_stats(const EngineStats& delta);
  void measure(ScenarioRun& run, bool defer_split_metrics) const;

  Scenario scenario_;
  std::shared_ptr<const Graph> graph_;
  double alpha_ = 0.0;
  double epsilon_ = 0.0;
  EngineLease primary_;     ///< leased lazily; held for the runner's lifetime
  EngineStats pool_stats_;  ///< telemetry folded in from per-job leases
  mutable std::mutex stats_mutex_;
};

}  // namespace fne
