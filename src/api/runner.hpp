// fne::ScenarioRunner — executes Scenarios (DESIGN.md §6).
//
// A runner is bound to one Scenario: it builds the topology once, resolves
// α/ε once, and owns ONE PruneEngine for the graph, whose workspace
// (Krylov basis, BFS queues, degree tables, cached Fiedler vector)
// survives across repetitions, fault-parameter sweeps, and churn rounds.
// That closes ROADMAP's "reuse component state across *rounds*" item: the
// per-round deltas of a churn process are tiny, and bench_s2_churn_engine
// shows the persistent engine beating per-round stateless pruning.
//
// Determinism contract: a ScenarioRunner is a pure function of its
// Scenario.  Repetition r derives its fault seed from (scenario.seed, r)
// via splitmix64 and its finder seed likewise, so the same Scenario run
// twice — or on two runners — produces bit-identical ScenarioRuns.
//
// Parallel execution (DESIGN.md §7): run_all(threads) and
// sweep_fault_param(..., threads) shard repetitions / sweep points across
// a pool of workers, each owning ONE persistent engine + workspace that
// survives all the repetitions that worker claims.  Seeds are derived per
// REPETITION, never per thread, and every repetition starts from a cold
// cross-run cache (PruneEngine::drop_warm_state), so each ScenarioRun is a
// pure function of (scenario, rep): outputs are bit-identical for ANY
// thread count and any work-stealing order.  Single-rep warm-engine use
// (run_once, run_churn) keeps the cross-run Fiedler cache — churn rounds
// are serially dependent anyway and profit most from it.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analysis/fragmentation.hpp"
#include "api/scenario.hpp"
#include "expansion/bracket.hpp"
#include "faults/churn.hpp"
#include "prune/engine.hpp"
#include "prune/verify.hpp"
#include "util/table.hpp"

namespace fne {

/// One executed repetition of a Scenario.
struct ScenarioRun {
  int repetition = 0;
  std::uint64_t fault_seed = 0;
  std::uint64_t finder_seed = 0;  ///< cut-finder seed used; replays via prune()/prune2()
  vid faults = 0;          ///< n - |alive|
  VertexSet alive;         ///< post-fault, pre-prune survivors
  PruneResult prune;
  double threshold = 0.0;  ///< α·ε actually used
  FragmentationProfile fragmentation;           ///< of prune.survivors (if requested)
  std::optional<ExpansionBracket> expansion;    ///< of prune.survivors (if requested)
  std::optional<TraceVerification> trace;       ///< replay certificate (if requested)
  double millis = 0.0;     ///< prune time only (topology/fault excluded)

  [[nodiscard]] double survivor_fraction(vid n) const {
    return n == 0 ? 0.0 : static_cast<double>(prune.survivors.count()) / n;
  }
};

/// One churn round executed through the runner's persistent engine.
struct ChurnRoundRun {
  ChurnStep churn;         ///< the raw process observables (parity with simulate_churn)
  vid survivors = 0;       ///< |H| after re-pruning this round's alive mask
  vid culled = 0;
  int iterations = 0;
  std::uint64_t finder_seed = 0;  ///< cut-finder seed used this round
  double prune_millis = 0.0;
};

struct ChurnRunTrace {
  std::vector<ChurnRoundRun> rounds;
  VertexSet final_alive;       ///< churn process state after the last round
  VertexSet final_survivors;   ///< prune survivors of the last round
  [[nodiscard]] double total_prune_millis() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario);

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] const EngineStats& engine_stats() const noexcept { return engine_.stats(); }

  /// Cumulative telemetry across the runner's own engine AND every retired
  /// worker engine of past parallel run_all/sweep calls — the number to
  /// report when attributing total work regardless of thread count.
  [[nodiscard]] EngineStats total_engine_stats() const {
    EngineStats total = engine_.stats();
    total += pool_stats_;
    return total;
  }

  /// Execute repetition `rep`: inject faults, prune through the persistent
  /// engine, measure the requested metrics.  Keeps the engine's cross-run
  /// warm cache (legacy single-shot semantics).
  [[nodiscard]] ScenarioRun run_once(int rep = 0);

  /// All scenario.repetitions, sharded over `threads` workers (clamped to
  /// [1, repetitions]).  threads == 1 runs on the runner's own engine;
  /// more spin up one persistent PruneEngine per worker, repetitions
  /// claimed dynamically.  Every repetition is cache-isolated, so the
  /// returned runs are bit-identical for any thread count (see the
  /// determinism contract above).
  [[nodiscard]] std::vector<ScenarioRun> run_all(int threads = 1);

  /// Swap the fault process (topology, α/ε and engine state are kept —
  /// that is the point of the persistent engine).
  void set_fault(FaultSpec fault);

  /// Sweep one numeric fault param over `values`: one run per value at
  /// repetition 0's seed, sharded over `threads` workers like run_all.
  /// The runner's own fault spec is never mutated (each point runs a
  /// copy), so a bad key/value cannot poison later runs.
  [[nodiscard]] std::vector<ScenarioRun> sweep_fault_param(const std::string& key,
                                                           std::span<const double> values,
                                                           int threads = 1);

  /// Drive a churn process and re-prune EVERY round through the
  /// persistent engine.  The fault stream is bit-identical to
  /// simulate_churn(graph(), options) — the scenario's fault spec is not
  /// used here.
  [[nodiscard]] ChurnRunTrace run_churn(const ChurnOptions& options);

  /// Render runs as a metrics table (one row per run; columns follow the
  /// scenario's MetricsSpec).  `label` names the first column.
  [[nodiscard]] Table metrics_table(std::span<const ScenarioRun> runs,
                                    const std::vector<std::string>& labels = {}) const;

 private:
  [[nodiscard]] PruneEngineOptions engine_options(std::uint64_t finder_seed) const;
  /// One repetition on an explicit engine and fault spec — the unit of
  /// work a pool worker executes.  Pure given (scenario, fault, rep) when
  /// the engine's warm state was dropped.
  [[nodiscard]] ScenarioRun run_point(PruneEngine& engine, const FaultSpec& fault,
                                      int rep) const;
  /// Shard `jobs` indices over `threads` engine-pool workers; jobs[i]
  /// fills out[i].  Worker exceptions are rethrown on the caller.
  void run_pooled(std::span<const FaultSpec> faults, std::span<const int> reps,
                  std::span<ScenarioRun> out, int threads);
  void measure(ScenarioRun& run) const;

  Scenario scenario_;
  Graph graph_;
  double alpha_ = 0.0;
  double epsilon_ = 0.0;
  PruneEngine engine_;
  EngineStats pool_stats_;  ///< telemetry folded in from retired worker engines
};

}  // namespace fne
