// fne::Scenario — a declarative description of one paper-style experiment
// (DESIGN.md §6): which topology to build, how to injure it, how to run
// Prune/Prune2, and which metrics to measure on the survivor.
//
// Every experiment in the paper — and every bench, test and example in
// this repo — is an instance of the same pipeline
//
//     topology × fault process × prune × analysis
//
// A Scenario is the value type naming one such instance; ScenarioRunner
// (api/runner.hpp) executes it.  Topologies and fault processes are
// referenced by registry name (api/registry.hpp) so a scenario is fully
// describable as flat strings — CLI flags, config rows, CSV columns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/params.hpp"
#include "expansion/cut_finder.hpp"
#include "expansion/types.hpp"

namespace fne {

struct TopologySpec {
  std::string name = "mesh";  ///< TopologyRegistry key
  Params params;
};

struct FaultSpec {
  std::string name = "random";  ///< FaultModelRegistry key
  Params params;
};

struct PruneSpec {
  /// Node = Prune (Theorem 2.1), Edge = Prune2 (Theorem 3.4).
  ExpansionKind kind = ExpansionKind::Edge;
  /// Expansion parameter α.  <= 0 means "measure it": the runner brackets
  /// the fault-free graph's expansion once and uses the constructive
  /// upper bound — the honest α per bench_e1's argument.
  double alpha = 0.0;
  /// Threshold factor ε.  <= 0 means the kind's canonical choice:
  /// 1/(2·max_degree) for Edge (Theorem 3.4), 1/2 for Node (k = 2).
  double epsilon = 0.0;
  /// Engine speed switches (warm start / stale sweep / early exit).  Off,
  /// runs are bit-identical to the stateless reference loops.
  bool fast = false;
  /// Cut-finder knobs; the seed field is overridden per repetition.
  CutFinderOptions finder{};
  int max_iterations = 100000;
};

/// One registered-metric request: a MetricsRegistry key (api/metrics.hpp)
/// plus its params.  Resolved and computed per repetition by the runner.
struct MetricRequest {
  std::string name;
  Params params;
  friend bool operator==(const MetricRequest&, const MetricRequest&) = default;
};

/// One computed metric: the registry key, a deterministic flat JSON
/// payload (byte-identical for any thread count — the campaign report
/// splices it verbatim), and a short human summary for tables.
struct MetricRecord {
  std::string name;
  std::string payload;
  std::string brief;
};

struct MetricsSpec {
  /// Fragmentation profile of the survivor set (components, gamma).
  bool fragmentation = true;
  /// Expansion bracket of the survivor set (costly: extra cut searches).
  bool expansion = false;
  /// Replay-verify the prune trace (prune/verify.hpp certification).
  bool verify_trace = false;
  vid bracket_exact_limit = 14;  ///< exact enumeration cap for brackets
  /// Registered metrics to compute per repetition, in order (the three
  /// legacy bools above are also reachable by name through the registry;
  /// they stay as switches because every existing consumer reads their
  /// typed ScenarioRun fields).
  std::vector<MetricRequest> requests;
};

struct Scenario {
  std::string name;  ///< free-form label, used in tables
  TopologySpec topology;
  FaultSpec fault;
  PruneSpec prune;
  MetricsSpec metrics;
  int repetitions = 1;
  std::uint64_t seed = 42;
};

/// Named scenario presets for the scenario_runner CLI and the CI smoke:
/// small, seconds-fast instances of the paper's experiment families.
[[nodiscard]] std::vector<Scenario> scenario_catalog();
/// Look up a preset by name (REQUIREs it exists).
[[nodiscard]] Scenario named_scenario(const std::string& name);

}  // namespace fne
