// fne::Campaign — a batch of Scenarios executed as one schedule over the
// process-wide engine cache (DESIGN.md §8).
//
// The paper's experiments are CAMPAIGNS: the same prune/prune2 analysis
// swept across many topologies, fault regimes and parameters.  A
// Campaign names that whole study as a value — a list of entries, each a
// Scenario plus an optional fault-parameter sweep — loadable from a JSON
// file (campaign_from_file, parsed via util/json.hpp), assembled from
// scenario_catalog() presets, or built ad hoc.
//
// CampaignRunner flattens every entry into scenario×repetition (or
// sweep-point) jobs and runs ALL of them on one ExecutorPool: a campaign
// with 40 one-rep scenarios parallelizes as well as one 40-rep scenario.
// Jobs lease engines from the EngineCache, so entries sharing a topology
// share graphs and warm buffer pools, and the whole run produces one
// aggregated CampaignReport: per-entry ScenarioRuns plus folded
// EngineStats and cache telemetry.
//
// Determinism: every job is a pure function of (scenario, rep) — seeds
// per repetition, warm state dropped at engine lease — and monotone
// sweep chains run as single serial jobs, so the report's DETERMINISTIC
// PAYLOAD (to_json(/*include_timing=*/false)) is byte-identical for any
// thread count and any cache-hit pattern.  Wall-clock fields and cache
// hit/miss counters are placement-dependent by nature and only appear
// when include_timing is true.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"

namespace fne {

class ResultStore;

/// One fault-parameter sweep attached to a campaign entry.
struct SweepSpec {
  std::string param;
  std::vector<double> values;
  SweepMode mode = SweepMode::kIndependent;
};

/// One campaign line: a Scenario, run either as scenario.repetitions
/// independent repetitions or as a sweep over `sweep->values`.
struct CampaignEntry {
  Scenario scenario;
  std::optional<SweepSpec> sweep;
};

struct Campaign {
  std::string name = "campaign";
  std::vector<CampaignEntry> entries;
};

/// Build a Campaign from a JSON document / file.  Schema (all scenario
/// fields optional on top of the preset or the defaults; unknown keys
/// are rejected with the offending key named):
///
///   {"name": "smoke",
///    "scenarios": [
///      {"preset": "mesh-random", "repetitions": 3, "seed": 7},
///      {"name": "sweep-example",
///       "topology": {"name": "mesh", "params": {"side": 16, "dims": 2}},
///       "fault":    {"name": "random", "params": {"p": 0.1}},
///       "prune":    {"kind": "edge", "alpha": 0.125, "epsilon": 0,
///                    "fast": true, "max_iterations": 100000},
///       "metrics":  {"fragmentation": true, "expansion": false,
///                    "verify_trace": false, "bracket_exact_limit": 14,
///                    "requests": [{"name": "mesh_span",
///                                  "params": {"samples": 16}}]},
///       "sweep":    {"param": "p", "values": [0.05, 0.15, 0.25],
///                    "mode": "monotone"}}]}
[[nodiscard]] Campaign campaign_from_json(const std::string& text);
[[nodiscard]] Campaign campaign_from_file(const std::string& path);

/// The whole scenario_catalog() as a campaign (the CI smoke workload).
[[nodiscard]] Campaign catalog_campaign(int repetitions = 1);

/// One executed campaign entry.
struct ScenarioReport {
  Scenario scenario;           ///< as resolved (preset + overrides)
  std::optional<SweepSpec> sweep;
  double alpha = 0.0;
  double epsilon = 0.0;
  vid n = 0;
  std::vector<ScenarioRun> runs;  ///< one per repetition / sweep point
  EngineStats engine;          ///< work attributed to this entry (placement-independent)
  double millis = 0.0;         ///< summed job wall-clock (timing payload only)
};

/// How the run split between the result store and fresh compute.  Like
/// cache telemetry this depends on store STATE, not on the campaign, so
/// it only appears in the timing payload.
struct CampaignStoreStats {
  std::uint64_t hits = 0;             ///< jobs served from the store
  std::uint64_t misses = 0;           ///< jobs computed (and committed)
  std::uint64_t bytes_loaded = 0;
  std::uint64_t bytes_committed = 0;
};

struct CampaignReport {
  std::string name;
  std::vector<ScenarioReport> scenarios;
  int threads = 1;             ///< as requested (timing payload only)
  double millis = 0.0;         ///< wall-clock of the whole run
  EngineCacheStats cache;      ///< cache ops during the run (placement-dependent)
  bool store_enabled = false;  ///< run went through a ResultStore
  CampaignStoreStats store;    ///< hit/miss split (timing payload only)

  [[nodiscard]] EngineStats total_engine_stats() const;
  /// Serialize.  include_timing=false yields the deterministic payload:
  /// byte-identical across thread counts and cache-hit patterns (the
  /// campaign determinism tests and bench_s4_campaign compare exactly
  /// this string).
  [[nodiscard]] std::string to_json(bool include_timing = true) const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(Campaign campaign);

  [[nodiscard]] const Campaign& campaign() const noexcept { return campaign_; }

  /// Execute every entry's jobs on `threads` ExecutorPool workers.
  /// Entry construction (graph build, α measurement) is itself
  /// parallelized across entries.  May be called repeatedly; each call
  /// reports only its own work.
  [[nodiscard]] CampaignReport run(int threads = 1);

  /// Store-backed execution (DESIGN.md §11).  Every job is keyed
  /// (store/key.hpp); a key already in `store` is served from disk —
  /// bit-identical to fresh compute by the determinism contract — and a
  /// miss is computed then committed, so a killed campaign resumed on
  /// the same store recomputes only the missing cells.  The DETERMINISTIC
  /// payload (to_json(false)) is byte-identical for any hit/miss split,
  /// any thread count, and store == nullptr (which is exactly run(threads)).
  [[nodiscard]] CampaignReport run(int threads, ResultStore* store);

 private:
  Campaign campaign_;
};

}  // namespace fne
