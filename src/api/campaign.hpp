// fne::Campaign — a batch of Scenarios executed as one schedule over the
// process-wide engine cache (DESIGN.md §8).
//
// The paper's experiments are CAMPAIGNS: the same prune/prune2 analysis
// swept across many topologies, fault regimes and parameters.  A
// Campaign names that whole study as a value — a list of entries, each a
// Scenario plus an optional fault-parameter sweep — loadable from a JSON
// file (campaign_from_file, parsed via util/json.hpp), assembled from
// scenario_catalog() presets, or built ad hoc.
//
// CampaignRunner flattens every entry into scenario×repetition (or
// sweep-point) jobs and runs ALL of them on one ExecutorPool: a campaign
// with 40 one-rep scenarios parallelizes as well as one 40-rep scenario.
// Jobs lease engines from the EngineCache, so entries sharing a topology
// share graphs and warm buffer pools, and the whole run produces one
// aggregated CampaignReport: per-entry ScenarioRuns plus folded
// EngineStats and cache telemetry.
//
// Determinism: every job is a pure function of (scenario, rep) — seeds
// per repetition, warm state dropped at engine lease — and monotone
// sweep chains run as single serial jobs, so the report's DETERMINISTIC
// PAYLOAD (to_json(/*include_timing=*/false)) is byte-identical for any
// thread count and any cache-hit pattern.  Wall-clock fields and cache
// hit/miss counters are placement-dependent by nature and only appear
// when include_timing is true.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/runner.hpp"
#include "api/scenario.hpp"
#include "store/result_store.hpp"

namespace fne {

/// One fault-parameter sweep attached to a campaign entry.
struct SweepSpec {
  std::string param;
  std::vector<double> values;
  SweepMode mode = SweepMode::kIndependent;
};

/// One campaign line: a Scenario, run either as scenario.repetitions
/// independent repetitions or as a sweep over `sweep->values`.
struct CampaignEntry {
  Scenario scenario;
  std::optional<SweepSpec> sweep;
};

struct Campaign {
  std::string name = "campaign";
  std::vector<CampaignEntry> entries;
};

/// Build a Campaign from a JSON document / file.  Schema (all scenario
/// fields optional on top of the preset or the defaults; unknown keys
/// are rejected with the offending key named):
///
///   {"name": "smoke",
///    "scenarios": [
///      {"preset": "mesh-random", "repetitions": 3, "seed": 7},
///      {"name": "sweep-example",
///       "topology": {"name": "mesh", "params": {"side": 16, "dims": 2}},
///       "fault":    {"name": "random", "params": {"p": 0.1}},
///       "prune":    {"kind": "edge", "alpha": 0.125, "epsilon": 0,
///                    "fast": true, "max_iterations": 100000},
///       "metrics":  {"fragmentation": true, "expansion": false,
///                    "verify_trace": false, "bracket_exact_limit": 14,
///                    "requests": [{"name": "mesh_span",
///                                  "params": {"samples": 16}}]},
///       "sweep":    {"param": "p", "values": [0.05, 0.15, 0.25],
///                    "mode": "monotone"}}]}
[[nodiscard]] Campaign campaign_from_json(const std::string& text);
[[nodiscard]] Campaign campaign_from_file(const std::string& path);

/// The whole scenario_catalog() as a campaign (the CI smoke workload).
[[nodiscard]] Campaign catalog_campaign(int repetitions = 1);

/// One executed campaign entry.
struct ScenarioReport {
  Scenario scenario;           ///< as resolved (preset + overrides)
  std::optional<SweepSpec> sweep;
  double alpha = 0.0;
  double epsilon = 0.0;
  vid n = 0;
  std::vector<ScenarioRun> runs;  ///< one per repetition / sweep point
  EngineStats engine;          ///< work attributed to this entry (placement-independent)
  double millis = 0.0;         ///< summed job wall-clock (timing payload only)
};

/// How the run split between the result store and fresh compute.  Like
/// cache telemetry this depends on store STATE, not on the campaign, so
/// it only appears in the timing payload.  The corruption counters are
/// ABSOLUTE store-health values (StoreStats), not per-run deltas: disk
/// trouble heals silently into recompute, and this block is where it
/// stays visible.
struct CampaignStoreStats {
  std::uint64_t hits = 0;             ///< cells served from the store
  std::uint64_t misses = 0;           ///< cells computed (and committed)
  std::uint64_t bytes_loaded = 0;
  std::uint64_t bytes_committed = 0;
  std::uint64_t corrupt_records = 0;  ///< checksum-skipped frames (store lifetime)
  std::uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped at open
  std::uint64_t rotated_files = 0;    ///< foreign/versioned logs moved aside
};

struct CampaignReport {
  std::string name;
  std::vector<ScenarioReport> scenarios;
  int threads = 1;             ///< as requested (timing payload only)
  double millis = 0.0;         ///< wall-clock of the whole run
  EngineCacheStats cache;      ///< cache ops during the run (placement-dependent)
  bool store_enabled = false;  ///< run went through a ResultStore
  CampaignStoreStats store;    ///< hit/miss split (timing payload only)

  [[nodiscard]] EngineStats total_engine_stats() const;
  /// Serialize.  include_timing=false yields the deterministic payload:
  /// byte-identical across thread counts and cache-hit patterns (the
  /// campaign determinism tests and bench_s4_campaign compare exactly
  /// this string).
  [[nodiscard]] std::string to_json(bool include_timing = true) const;
};

/// One schedulable unit of a campaign.  Cells (kRep / kSweepPoint /
/// kChain) are also the unit of STORAGE: one cell, one content key
/// (store/key.hpp), one record.  kMetric jobs compute one split-declared
/// metric request (api/metrics.hpp MetricEntry::split_job) of a finished
/// cell's run — they ride the same schedulers but merge INTO their
/// parent cell, which is only committed to the store once complete.
struct CampaignJob {
  enum class Kind { kRep, kSweepPoint, kChain, kMetric };
  Kind kind = Kind::kRep;
  std::size_t entry = 0;
  int rep = 0;            ///< kRep (and kMetric of a kRep parent)
  int sweep_point = -1;   ///< >= 0: kSweepPoint (and kMetric of one)
  std::size_t request = 0;  ///< kMetric: index into metrics.requests
  std::size_t parent = 0;   ///< kMetric: job index of the parent cell
  std::string key;          ///< cell content key (kMetric: the parent's)
};

/// The flattened, deterministic schedule of a campaign plus the merge
/// state every executor shares.  Construction is a PURE function of the
/// Campaign (entry resolution parallelizes over `threads` but cannot
/// change a bit), so two plans of the same campaign — a coordinator and
/// its workers, or two processes racing one store — agree on job
/// indices, content keys and fingerprint().
///
/// Split of responsibilities:
///   compute_cell / compute_metric  — pure, lock-free, any thread;
///   accept_cell / accept_metric    — synchronized merge, idempotent
///     (first write wins; a duplicate or late completion returns false
///     and changes nothing), committing completed cells to the attached
///     store;
///   finish                         — assemble the CampaignReport (once).
///
/// Both CampaignRunner::run and the dist coordinator/workers (src/dist/)
/// are thin schedulers over this class — which is what makes "the
/// distributed payload is byte-identical to the local one" a structural
/// property instead of a test-enforced coincidence.
class CampaignPlan {
 public:
  CampaignPlan(const Campaign& campaign, int threads);

  [[nodiscard]] const Campaign& campaign() const noexcept { return campaign_; }
  [[nodiscard]] std::size_t num_jobs() const noexcept { return jobs_.size(); }
  [[nodiscard]] const CampaignJob& job(std::size_t i) const;
  /// FNV-1a over the schedule (campaign name, every job's identity and
  /// key).  The dist handshake compares fingerprints so a worker serving
  /// a DIFFERENT campaign is turned away instead of poisoning results.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Expected run count of a cell job (chain: all sweep values, else 1).
  [[nodiscard]] std::size_t expected_runs(std::size_t i) const;
  /// Execute a cell job (pure; any thread).  Split-declared metrics are
  /// deferred iff the cell has kMetric children.
  [[nodiscard]] std::vector<ScenarioRun> compute_cell(std::size_t i) const;
  /// Execute a metric job against its parent's completed run.
  [[nodiscard]] MetricRecord compute_metric(std::size_t i,
                                            const ScenarioRun& parent_run) const;
  /// Copy of the parent cell's run for a metric job; REQUIREs the parent
  /// to be done (metric jobs are blocked until then).
  [[nodiscard]] ScenarioRun parent_run(std::size_t metric_job) const;

  /// Merge a completed cell.  Returns false (and changes nothing) when
  /// the runs are the wrong shape or the cell is already done — the
  /// duplicate-completion and garbage-rejection path.
  bool accept_cell(std::size_t i, std::vector<ScenarioRun> runs);
  /// Merge a completed metric record into its parent cell.  False when
  /// the record mismatches the request, the parent is not done, or the
  /// job already merged.
  bool accept_metric(std::size_t i, MetricRecord record);
  [[nodiscard]] bool done(std::size_t i) const;
  [[nodiscard]] bool all_done() const;

  /// Attach a store: serve every already-committed cell from disk (their
  /// metric jobs complete with them) and commit cells as they complete
  /// from here on.  Returns the number of cells served.  A record that
  /// fails to decode or has the wrong run count degrades to a miss.
  std::uint64_t attach_store(ResultStore& store);
  [[nodiscard]] std::uint64_t cells_served() const;
  [[nodiscard]] std::uint64_t num_cells() const noexcept { return num_cells_; }

  /// Assemble the report (single use: moves the merged runs out).
  /// REQUIREs all_done().
  [[nodiscard]] CampaignReport finish(int threads, double millis,
                                      const EngineCacheStats& cache_delta);

 private:
  [[nodiscard]] std::size_t cell_slot(const CampaignJob& job) const;
  void commit_locked(std::size_t cell);

  Campaign campaign_;
  std::vector<std::unique_ptr<ScenarioRunner>> runners_;
  std::vector<CampaignJob> jobs_;
  std::vector<std::vector<std::size_t>> children_;  ///< cell -> metric jobs
  std::vector<std::vector<ScenarioRun>> results_;   ///< per entry
  std::uint64_t fingerprint_ = 0;
  std::size_t num_cells_ = 0;

  mutable std::mutex mutex_;
  std::vector<char> job_done_;
  std::vector<std::size_t> missing_metrics_;  ///< per job (cells only)
  std::vector<char> served_;                  ///< cell came from the store
  std::size_t remaining_ = 0;
  std::uint64_t served_cells_ = 0;
  ResultStore* store_ = nullptr;
  StoreStats store_before_;  ///< snapshot at attach (byte deltas for finish)
};

class CampaignRunner {
 public:
  explicit CampaignRunner(Campaign campaign);

  [[nodiscard]] const Campaign& campaign() const noexcept { return campaign_; }

  /// Execute every entry's jobs on `threads` ExecutorPool workers.
  /// Entry construction (graph build, α measurement) is itself
  /// parallelized across entries.  May be called repeatedly; each call
  /// reports only its own work.
  [[nodiscard]] CampaignReport run(int threads = 1);

  /// Store-backed execution (DESIGN.md §11).  Every job is keyed
  /// (store/key.hpp); a key already in `store` is served from disk —
  /// bit-identical to fresh compute by the determinism contract — and a
  /// miss is computed then committed, so a killed campaign resumed on
  /// the same store recomputes only the missing cells.  The DETERMINISTIC
  /// payload (to_json(false)) is byte-identical for any hit/miss split,
  /// any thread count, and store == nullptr (which is exactly run(threads)).
  ///
  /// `cancel` (optional) is the scenario service's abandonment hook
  /// (DESIGN.md §13): polled between jobs by both executor passes.  A
  /// cancelled run throws CancelledError; completed cells were still
  /// committed to the store, so a resubmission resumes rather than
  /// restarts.
  [[nodiscard]] CampaignReport run(int threads, ResultStore* store,
                                   const CancelToken* cancel = nullptr);

 private:
  Campaign campaign_;
};

}  // namespace fne
