#include "api/runner.hpp"

#include <algorithm>
#include <utility>

#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fne {

namespace {

/// Decorrelated per-repetition seed streams (splitmix64 over a domain
/// tag), so rep i's faults and rep i's finder never share a stream and
/// `seed + i` collisions across scenarios cannot alias.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t domain,
                                        std::uint64_t index) {
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (domain + 1));
  (void)splitmix64(state);
  state += index;
  return splitmix64(state);
}

}  // namespace

std::uint64_t scenario_build_seed(const Scenario& scenario) {
  return derive_seed(scenario.seed, 0, 0);
}

double ChurnRunTrace::total_prune_millis() const {
  double total = 0.0;
  for (const ChurnRoundRun& r : rounds) total += r.prune_millis;
  return total;
}

ScenarioRunner::ScenarioRunner(Scenario scenario)
    : scenario_(std::move(scenario)),
      graph_(EngineCache::instance().graph(scenario_.topology.name, scenario_.topology.params,
                                           derive_seed(scenario_.seed, 0, 0))) {
  FNE_REQUIRE(scenario_.repetitions >= 1, "scenario needs >= 1 repetition");
  // Validate metric requests eagerly (names and declared params) so a
  // typo fails at construction, not after the prune work ran.  Names
  // must be unique: records are keyed by name in report payloads, and a
  // duplicate would silently emit duplicate JSON keys.
  for (std::size_t i = 0; i < scenario_.metrics.requests.size(); ++i) {
    const MetricRequest& request = scenario_.metrics.requests[i];
    MetricsRegistry::instance().check(request.name, request.params);
    for (std::size_t j = 0; j < i; ++j) {
      FNE_REQUIRE(scenario_.metrics.requests[j].name != request.name,
                  "scenario '" + scenario_.name + "': metric '" + request.name +
                      "' requested twice (records are keyed by name)");
    }
  }

  alpha_ = scenario_.prune.alpha;
  if (alpha_ <= 0.0) {
    // Measure: the constructive upper bound is a real cut of the
    // fault-free graph, so α is a value the graph actually has.
    BracketOptions bopts;
    bopts.exact_limit = scenario_.metrics.bracket_exact_limit;
    bopts.seed = derive_seed(scenario_.seed, 1, 0);
    alpha_ = expansion_bracket(*graph_, scenario_.prune.kind, bopts).upper;
    FNE_REQUIRE(alpha_ > 0.0, "scenario '" + scenario_.name +
                                  "': measured alpha is 0 (disconnected topology?); "
                                  "set prune.alpha explicitly");
  }
  epsilon_ = scenario_.prune.epsilon;
  if (epsilon_ <= 0.0) {
    epsilon_ = scenario_.prune.kind == ExpansionKind::Edge
                   ? 1.0 / (2.0 * static_cast<double>(graph_->max_degree()))
                   : 0.5;
  }
}

EngineLease ScenarioRunner::lease_engine() const {
  return EngineCache::instance().lease(scenario_.topology.name, scenario_.topology.params,
                                       derive_seed(scenario_.seed, 0, 0),
                                       scenario_.prune.kind);
}

PruneEngine& ScenarioRunner::primary_engine() {
  if (!primary_) primary_ = lease_engine();
  return primary_.engine();
}

void ScenarioRunner::fold_pool_stats(const EngineStats& delta) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  pool_stats_ += delta;
}

PruneEngineOptions ScenarioRunner::engine_options(std::uint64_t finder_seed) const {
  PruneEngineOptions opts;
  if (scenario_.prune.fast) opts = PruneEngineOptions::fast();
  // fast() only toggles switches; layer the scenario's finder knobs on
  // top, then re-apply the switches so fast mode survives the overwrite.
  const bool fast = scenario_.prune.fast;
  opts.finder = scenario_.prune.finder;
  opts.finder.warm_start = opts.finder.warm_start || fast;
  opts.finder.stale_sweep_first = opts.finder.stale_sweep_first || fast;
  opts.finder.early_exit = opts.finder.early_exit || fast;
  opts.finder.seed = finder_seed;
  opts.max_iterations = scenario_.prune.max_iterations;
  return opts;
}

void ScenarioRunner::measure(ScenarioRun& run, bool defer_split_metrics) const {
  if (scenario_.metrics.fragmentation) {
    run.fragmentation = fragmentation_profile(*graph_, run.prune.survivors);
  }
  if (scenario_.metrics.expansion && run.prune.survivors.count() >= 2) {
    BracketOptions bopts;
    bopts.exact_limit = scenario_.metrics.bracket_exact_limit;
    bopts.seed = derive_seed(scenario_.seed, 2, static_cast<std::uint64_t>(run.repetition));
    run.expansion =
        expansion_bracket(*graph_, run.prune.survivors, scenario_.prune.kind, bopts);
  }
  if (scenario_.metrics.verify_trace) {
    run.trace = verify_prune_trace(*graph_, run.alive, run.prune, scenario_.prune.kind,
                                   run.threshold);
  }
  // Registered metrics, in request order.  Each request gets its own
  // decorrelated seed stream per repetition (domains 0-5 are taken by the
  // runner itself), so metric sampling never aliases fault or finder
  // seeds and the records are pure functions of (scenario, request, rep).
  // Seeds are POSITIONAL (request index, not the subset actually computed
  // here), so a deferred split metric filled in later is bit-identical to
  // the inline computation.
  const auto& requests = scenario_.metrics.requests;
  run.metrics.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (defer_split_metrics && MetricsRegistry::instance().at(requests[i].name).split_job) {
      run.metrics.push_back(MetricRecord{requests[i].name, {}, {}});
      continue;
    }
    run.metrics.push_back(compute_metric_request(run, i));
  }
}

MetricRecord ScenarioRunner::compute_metric_request(const ScenarioRun& run,
                                                    std::size_t request_index) const {
  const auto& requests = scenario_.metrics.requests;
  FNE_REQUIRE(request_index < requests.size(),
              "scenario '" + scenario_.name + "': metric request index out of range");
  const MetricRequest& request = requests[request_index];
  const MetricContext ctx{*graph_,  scenario_, run, alpha_, epsilon_,
                          derive_seed(scenario_.seed, 6 + request_index,
                                      static_cast<std::uint64_t>(run.repetition))};
  return MetricsRegistry::instance().compute(request.name, ctx, request.params);
}

ScenarioRun ScenarioRunner::run_point(PruneEngine& engine, const FaultSpec& fault, int rep,
                                      const VertexSet* chain_start,
                                      bool defer_split_metrics) const {
  ScenarioRun run;
  run.repetition = rep;
  run.fault_seed = derive_seed(scenario_.seed, 3, static_cast<std::uint64_t>(rep));
  VertexSet model = FaultModelRegistry::instance().build(fault.name, *graph_, fault.params,
                                                         run.fault_seed);
  run.faults = graph_->num_vertices() - model.count();
  // Chained (monotone-sweep) starts prune the previous point's survivors
  // restricted to this point's mask; run.alive records the actual engine
  // input so verify_prune_trace certifies the run as usual.
  run.alive = chain_start == nullptr ? std::move(model) : (*chain_start & model);
  run.threshold = alpha_ * epsilon_;
  run.finder_seed = derive_seed(scenario_.seed, 4, static_cast<std::uint64_t>(rep));

  // Snapshot the engine's counters around the run: run.engine is the
  // work THIS prune performed, regardless of which surface (primary
  // lease, per-job lease, monotone chain point) drove it.
  const EngineStats before = engine.stats();
  Timer timer;
  run.prune = engine.run(run.alive, alpha_, epsilon_, engine_options(run.finder_seed));
  run.millis = timer.millis();
  run.engine = engine.stats() - before;
  measure(run, defer_split_metrics);
  return run;
}

ScenarioRun ScenarioRunner::run_once(int rep) {
  return run_point(primary_engine(), scenario_.fault, rep);
}

ScenarioRun ScenarioRunner::run_isolated(const FaultSpec& fault, int rep) {
  EngineLease lease = lease_engine();
  ScenarioRun run = run_point(lease.engine(), fault, rep);
  fold_pool_stats(lease.stats_delta());
  return run;
}

ScenarioRun ScenarioRunner::run_isolated_deferred(const FaultSpec& fault, int rep) {
  EngineLease lease = lease_engine();
  ScenarioRun run = run_point(lease.engine(), fault, rep, nullptr,
                              /*defer_split_metrics=*/true);
  fold_pool_stats(lease.stats_delta());
  return run;
}

void ScenarioRunner::run_pooled(std::span<const FaultSpec> faults, std::span<const int> reps,
                                std::span<ScenarioRun> out, int threads) {
  const std::size_t jobs = out.size();
  FNE_REQUIRE(faults.size() == jobs && reps.size() == jobs, "pooled spans must align");
  threads = std::clamp<int>(threads, 1, static_cast<int>(std::max<std::size_t>(jobs, 1)));

  // Whatever executes job i, its result depends only on (scenario,
  // faults[i], reps[i]): every job runs on an engine whose warm state was
  // dropped (the one cross-run channel, the cached Fiedler ordering), so
  // placement, claim order and cache-hit pattern cannot leak into the
  // outputs.
  if (threads == 1) {
    PruneEngine& engine = primary_engine();
    for (std::size_t i = 0; i < jobs; ++i) {
      engine.drop_warm_state();
      out[i] = run_point(engine, faults[i], reps[i]);
    }
    return;
  }
  ExecutorPool::run(jobs, threads,
                    [&](std::size_t i) { out[i] = run_isolated(faults[i], reps[i]); });
}

std::vector<ScenarioRun> ScenarioRunner::run_all(int threads) {
  const auto reps = static_cast<std::size_t>(scenario_.repetitions);
  std::vector<ScenarioRun> runs(reps);
  std::vector<FaultSpec> faults(reps, scenario_.fault);
  std::vector<int> rep_ids(reps);
  for (std::size_t i = 0; i < reps; ++i) rep_ids[i] = static_cast<int>(i);
  run_pooled(faults, rep_ids, runs, threads);
  return runs;
}

void ScenarioRunner::set_fault(FaultSpec fault) {
  // Validate the name eagerly so a typo fails at set time, not mid-sweep.
  (void)FaultModelRegistry::instance().at(fault.name);
  scenario_.fault = std::move(fault);
}

std::vector<ScenarioRun> ScenarioRunner::sweep_fault_param(const std::string& key,
                                                           std::span<const double> values,
                                                           int threads, SweepMode mode) {
  if (mode == SweepMode::kMonotone) return sweep_monotone(key, values);

  // Each point runs a COPY of the fault spec with the swept key set, so
  // the runner's own spec is never touched: a bad key/value surfaces as a
  // registry PreconditionError from run_pooled without poisoning later
  // runs, and points are free to execute on any worker.
  std::vector<FaultSpec> faults(values.size(), scenario_.fault);
  for (std::size_t i = 0; i < values.size(); ++i) faults[i].params.set(key, values[i]);
  const std::vector<int> rep_ids(values.size(), 0);
  std::vector<ScenarioRun> runs(values.size());
  run_pooled(faults, rep_ids, runs, threads);
  return runs;
}

std::vector<ScenarioRun> ScenarioRunner::sweep_monotone(const std::string& key,
                                                        std::span<const double> values) {
  // Gate on the registry's declaration: chaining is only sound when the
  // fault model's alive mask at value[j] is a SUBSET of the mask at
  // value[j-1] under the same seed (the coupling random/high_degree
  // provide).  Ascending values then make the masks nest.
  const FaultModelEntry& entry = FaultModelRegistry::instance().at(scenario_.fault.name);
  const bool declared = std::any_of(entry.monotone_params.begin(), entry.monotone_params.end(),
                                    [&](const std::string& p) { return p == key; });
  FNE_REQUIRE(declared, "fault model '" + scenario_.fault.name + "' does not declare param '" +
                            key + "' monotone; use SweepMode::kIndependent");
  for (std::size_t i = 1; i < values.size(); ++i) {
    FNE_REQUIRE(values[i - 1] < values[i],
                "monotone sweep values must be strictly ascending");
  }

  // The whole chain is ONE serial job on ONE lease: point j depends on
  // point j-1, and running it as a unit keeps campaign placement and
  // thread counts out of the result.  Every point runs at rep 0's seeds
  // — exactly like the independent sweep, so both modes see the same
  // fault masks and the parity checks are meaningful.
  EngineLease lease = lease_engine();
  std::vector<ScenarioRun> runs;
  runs.reserve(values.size());
  VertexSet prev_survivors;
  for (std::size_t j = 0; j < values.size(); ++j) {
    FaultSpec fault = scenario_.fault;
    fault.params.set(key, values[j]);
    runs.push_back(
        run_point(lease.engine(), fault, 0, j == 0 ? nullptr : &prev_survivors));
    prev_survivors = runs.back().prune.survivors;
  }
  fold_pool_stats(lease.stats_delta());
  return runs;
}

ChurnRunTrace ScenarioRunner::run_churn(const ChurnOptions& options) {
  PruneEngine& engine = primary_engine();
  ChurnProcess process(*graph_, options);
  ChurnRunTrace trace;
  trace.rounds.reserve(static_cast<std::size_t>(options.steps));
  for (int t = 0; t < options.steps; ++t) {
    ChurnRoundRun round;
    round.churn = process.step();
    round.finder_seed = derive_seed(scenario_.seed, 5, static_cast<std::uint64_t>(t));
    Timer timer;
    const PruneResult pruned =
        engine.run(process.alive(), alpha_, epsilon_, engine_options(round.finder_seed));
    round.prune_millis = timer.millis();
    round.survivors = pruned.survivors.count();
    round.culled = pruned.total_culled;
    round.iterations = pruned.iterations;
    if (t + 1 == options.steps) trace.final_survivors = pruned.survivors;
    trace.rounds.push_back(round);
  }
  trace.final_alive = process.alive();
  return trace;
}

Table ScenarioRunner::metrics_table(std::span<const ScenarioRun> runs,
                                    const std::vector<std::string>& labels) const {
  std::vector<std::string> headers{"run", "n", "faults", "alive", "|H|", "|H|/n",
                                   "culled", "iters", "ms"};
  if (scenario_.metrics.fragmentation) {
    headers.push_back("gamma(H)");
    headers.push_back("comps");
  }
  if (scenario_.metrics.expansion) headers.push_back("exp(H) [lo,up]");
  if (scenario_.metrics.verify_trace) headers.push_back("trace");
  for (const MetricRequest& request : scenario_.metrics.requests) {
    headers.push_back(request.name);
  }

  Table table(std::move(headers));
  const vid n = graph_->num_vertices();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScenarioRun& r = runs[i];
    table.row()
        .cell(i < labels.size() ? labels[i] : "rep " + std::to_string(r.repetition))
        .cell(std::size_t{n})
        .cell(std::size_t{r.faults})
        .cell(std::size_t{r.alive.count()})
        .cell(std::size_t{r.prune.survivors.count()})
        .cell(r.survivor_fraction(n), 3)
        .cell(std::size_t{r.prune.total_culled})
        .cell(r.prune.iterations)
        .cell(r.millis, 1);
    if (scenario_.metrics.fragmentation) {
      table.cell(r.fragmentation.gamma, 3).cell(r.fragmentation.num_components);
    }
    if (scenario_.metrics.expansion) {
      if (r.expansion.has_value()) {
        table.cell("[" + std::to_string(r.expansion->lower).substr(0, 6) + "," +
                   std::to_string(r.expansion->upper).substr(0, 6) + "]");
      } else {
        table.cell("-");
      }
    }
    if (scenario_.metrics.verify_trace) {
      table.cell(r.trace.has_value() ? (r.trace->valid ? "valid" : "INVALID") : "-");
    }
    for (std::size_t m = 0; m < scenario_.metrics.requests.size(); ++m) {
      table.cell(m < r.metrics.size() ? r.metrics[m].brief : "-");
    }
  }
  return table;
}

}  // namespace fne
