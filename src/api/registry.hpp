// String-keyed registries normalizing every topology builder and fault
// model behind uniform factory signatures (DESIGN.md §6).
//
// The repo grew one API per module: free functions (hypercube(dims)),
// result structs (ChainExpanderResult-style wrappers), the Mesh class,
// and three unrelated fault entry points (fault_model.hpp, adversary.hpp,
// churn.hpp).  The registries put one seam over all of them:
//
//   TopologyRegistry :  name × Params × seed -> Graph
//   FaultModelRegistry: name × Graph × Params × seed -> alive VertexSet
//
// Contracts enforced uniformly for every registered entry:
//   * declared params — build() rejects any key the entry did not
//     declare (typos fail loudly, with the declared keys in the message);
//   * vertex-count contract — every topology entry computes expected_n()
//     from its params *before* building, and build() REQUIREs the built
//     graph to match.  This pins down families like debruijn(dims) and
//     shuffle_exchange(dims) whose size (2^dims) was previously implicit;
//   * REQUIRE-style errors — range violations surface as
//     PreconditionError naming the entry ("topology 'mesh': ...").
//
// Registries are process-wide singletons; builtins are registered in the
// constructor (not by self-registering globals, which a static-library
// link would dead-strip).  add() lets applications extend them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/params.hpp"
#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// One declared parameter of a registered factory.
struct ParamSpec {
  std::string key;
  std::string default_value;  ///< display only; factories own the real default
  std::string doc;
};

struct TopologyEntry {
  std::string name;
  std::string doc;
  std::vector<ParamSpec> params;
  /// Vertex count implied by the params, computable without building.
  std::function<vid(const Params&)> expected_n;
  std::function<Graph(const Params&, std::uint64_t seed)> build;
  /// Whether the factory actually reads the seed.  Deterministic families
  /// (mesh, hypercube, ...) set false; the EngineCache then folds every
  /// build seed to one key so scenarios differing only in their fault
  /// seed share a graph and an engine pool.
  bool seeded = true;
  /// Resolved structural metadata (DESIGN.md §8): the coordinate facts a
  /// geometric analysis needs, as flat key/value pairs computed from the
  /// params WITHOUT building — e.g. mesh side/dims/wrap, butterfly
  /// levels/rows, de Bruijn dims.  Empty function = no structure beyond
  /// the vertex count.  This is what lets mesh-span/embedding analyses
  /// run from a Scenario instead of a bespoke constructor (mesh_for()).
  std::function<Params(const Params&)> structure;
  /// Extra cache-key material the params alone do not capture
  /// (DESIGN.md §14).  The EngineCache appends this to its graph/engine
  /// keys, so an entry whose build output depends on state outside the
  /// params — the `file` topology's on-disk bytes — returns a content
  /// fingerprint here (path + header checksum) and an edited file can
  /// never be served a stale cached graph.  Empty function = params are
  /// the whole identity (every synthetic family).
  std::function<std::string(const Params&)> cache_salt;
};

class TopologyRegistry {
 public:
  /// The process-wide registry, with all builtin families registered.
  [[nodiscard]] static TopologyRegistry& instance();

  void add(TopologyEntry entry);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const TopologyEntry& at(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validate params against the entry's declaration, build, and REQUIRE
  /// the result to honor the entry's vertex-count contract.
  [[nodiscard]] Graph build(const std::string& name, const Params& params,
                            std::uint64_t seed) const;
  /// The vertex count `build` would produce, without building.
  [[nodiscard]] vid expected_n(const std::string& name, const Params& params) const;
  /// The entry's resolved structural metadata for these params (validated
  /// against the declaration); empty Params when the entry declares none.
  [[nodiscard]] Params structure(const std::string& name, const Params& params) const;

 private:
  TopologyRegistry();
  std::map<std::string, TopologyEntry> entries_;
};

class Mesh;  // topology/mesh.hpp

/// Rebuild the Mesh VALUE (coordinates, strides, wrap) described by a
/// "mesh"/"torus" topology spec through the registry's structure
/// metadata, so coordinate-dependent analyses (span/mesh_span.hpp,
/// analysis/embedding.hpp) can run from a Scenario.  REQUIREs the entry
/// to declare mesh structure (side/dims/wrap keys).
[[nodiscard]] Mesh mesh_for(const std::string& name, const Params& params);

/// The entry's cache_salt output for these params, or "" when the entry
/// declares none (every synthetic family).  This is THE way to fold a
/// topology into a cache or store key: both the EngineCache keys and the
/// persistent store_cell_key() append it, so state outside the params
/// (the `file` topology's on-disk bytes) can never be served stale from
/// either layer (DESIGN.md §14).
[[nodiscard]] std::string topology_cache_salt(const std::string& name, const Params& params);

struct FaultModelEntry {
  std::string name;
  std::string doc;
  std::vector<ParamSpec> params;
  /// Returns the *alive* set (survivors), matching faults/fault_model.hpp
  /// conventions: params always describe the fault process, not survival.
  std::function<VertexSet(const Graph&, const Params&, std::uint64_t seed)> build;
  /// Params declared MONOTONE: under a fixed seed, a larger value makes
  /// the alive mask shrink as a SUBSET (a coupling, not just a count
  /// bound) — e.g. 'random' draws one uniform per vertex and compares it
  /// to p, 'high_degree' takes a prefix of one fixed degree order.  This
  /// is the gate for SweepMode::kMonotone's chained fault sweeps
  /// (DESIGN.md §8); models whose selection changes shape with the
  /// budget (sweep_cut, separator, bisection, random_exact's Floyd
  /// sampling) must NOT be declared.
  std::vector<std::string> monotone_params;
};

class FaultModelRegistry {
 public:
  [[nodiscard]] static FaultModelRegistry& instance();

  void add(FaultModelEntry entry);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const FaultModelEntry& at(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validate params and run the fault process; REQUIREs the returned
  /// alive mask to live in g's universe.
  [[nodiscard]] VertexSet build(const std::string& name, const Graph& g, const Params& params,
                                std::uint64_t seed) const;

 private:
  FaultModelRegistry();
  std::map<std::string, FaultModelEntry> entries_;
};

}  // namespace fne
