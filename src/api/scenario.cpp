#include "api/scenario.hpp"

#include "util/require.hpp"

namespace fne {

std::vector<Scenario> scenario_catalog() {
  std::vector<Scenario> catalog;

  {
    // The quickstart workload: random faults on a 2-D mesh, Prune2.
    Scenario s;
    s.name = "mesh-random";
    s.topology = {"mesh", Params{{"side", "24"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.05"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.metrics.verify_trace = true;
    catalog.push_back(s);
  }
  {
    // Theorem 2.1 regime: adversarial sweep cuts on an expander, Prune.
    Scenario s;
    s.name = "expander-adversarial";
    s.topology = {"random_regular", Params{{"n", "256"}, {"degree", "4"}}};
    s.fault = {"sweep_cut", Params{{"frac", "0.05"}}};
    s.prune.kind = ExpansionKind::Node;
    s.metrics.verify_trace = true;
    catalog.push_back(s);
  }
  {
    // Hub attack on the hypercube, Prune.
    Scenario s;
    s.name = "hypercube-hubs";
    s.topology = {"hypercube", Params{{"dims", "8"}}};
    s.fault = {"high_degree", Params{{"frac", "0.1"}}};
    s.prune.kind = ExpansionKind::Node;
    catalog.push_back(s);
  }
  {
    // The CAN overlay under a one-shot churn wave (paper §4), Prune2.
    Scenario s;
    s.name = "can-churn";
    s.topology = {"can", Params{{"peers", "256"}, {"dims", "3"}}};
    s.fault = {"random", Params{{"p", "0.15"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.metrics.expansion = true;
    catalog.push_back(s);
  }
  {
    // Theorem 3.1 regime: Θ(1/k) random faults collapse the chain expander.
    Scenario s;
    s.name = "chain-collapse";
    s.topology = {"chain_expander", Params{{"base_n", "32"}, {"base_degree", "4"}, {"k", "8"}}};
    s.fault = {"random", Params{{"p", "0.125"}}};
    s.prune.kind = ExpansionKind::Node;
    catalog.push_back(s);
  }
  {
    // Sparse-network baseline: de Bruijn under random faults, Prune2.
    Scenario s;
    s.name = "debruijn-random";
    s.topology = {"debruijn", Params{{"dims", "9"}}};
    s.fault = {"random", Params{{"p", "0.05"}}};
    s.prune.kind = ExpansionKind::Edge;
    catalog.push_back(s);
  }
  {
    // E6 regime (Theorem 3.6 / Lemma 3.7): constructive span trees on a
    // 2-D mesh plus the emulation quality of the pruned survivor — both
    // as registered metrics, so the whole analysis is campaign data.
    Scenario s;
    s.name = "mesh-span";
    s.topology = {"mesh", Params{{"side", "16"}, {"dims", "2"}}};
    s.fault = {"random", Params{{"p", "0.05"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.prune.alpha = 2.0 / 16.0;
    s.metrics.requests = {{"mesh_span", Params{{"samples", "16"}}},
                          {"embedding_quality", Params{}}};
    catalog.push_back(s);
  }
  {
    // E8 regime (§4 conjecture): sampled span estimate of a conjectured
    // O(1)-span family, with the expander certificate of the survivor.
    Scenario s;
    s.name = "span-conjecture";
    s.topology = {"debruijn", Params{{"dims", "7"}}};
    s.fault = {"random", Params{{"p", "0.05"}}};
    s.prune.kind = ExpansionKind::Edge;
    s.metrics.requests = {{"span_estimate", Params{{"samples", "4"}}},
                          {"expander_certificate", Params{}}};
    catalog.push_back(s);
  }

  return catalog;
}

Scenario named_scenario(const std::string& name) {
  std::string known;
  for (const Scenario& s : scenario_catalog()) {
    if (s.name == name) return s;
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  FNE_REQUIRE(false, "unknown scenario '" + name + "' (catalog: " + known + ")");
  return {};  // unreachable
}

}  // namespace fne
