#include "api/params.hpp"

#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/require.hpp"

namespace fne {

Params::Params(std::initializer_list<std::pair<std::string, std::string>> kvs) {
  for (const auto& [k, v] : kvs) values_[k] = v;
}

Params Params::parse(const std::string& spec) {
  Params p;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      p.values_[token] = "1";
    } else {
      p.values_[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return p;
}

Params& Params::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
  return *this;
}

Params& Params::set(const std::string& key, std::int64_t value) {
  return set(key, std::to_string(value));
}

Params& Params::set(const std::string& key, double value) {
  std::ostringstream os;
  // max_digits10 keeps the round trip lossless: sweeps that store probe
  // values (e.g. Theorem 3.4's ~1e-6 bound) must run at exactly them.
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << value;
  return set(key, os.str());
}

bool Params::has(const std::string& key) const { return values_.count(key) != 0; }

std::string Params::get_str(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Params::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  FNE_REQUIRE(end != it->second.c_str() && *end == '\0',
              "param '" + key + "': '" + it->second + "' is not an integer");
  return v;
}

double Params::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  FNE_REQUIRE(end != it->second.c_str() && *end == '\0',
              "param '" + key + "': '" + it->second + "' is not a number");
  return v;
}

bool Params::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  FNE_REQUIRE(false, "param '" + key + "': '" + s + "' is not a boolean");
  return fallback;  // unreachable
}

std::string Params::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace fne
