#include "api/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "api/registry.hpp"
#include "util/require.hpp"

namespace fne {

// ---------------------------------------------------------------------------
// EngineLease
// ---------------------------------------------------------------------------

EngineLease::EngineLease(EngineCache* cache, std::unique_ptr<Slot> slot) noexcept
    : cache_(cache), slot_(std::move(slot)) {}

EngineLease::EngineLease(EngineLease&& o) noexcept
    : cache_(o.cache_), slot_(std::move(o.slot_)) {
  o.cache_ = nullptr;
}

EngineLease& EngineLease::operator=(EngineLease&& o) noexcept {
  if (this != &o) {
    release();
    cache_ = o.cache_;
    slot_ = std::move(o.slot_);
    o.cache_ = nullptr;
  }
  return *this;
}

EngineLease::~EngineLease() { release(); }

PruneEngine& EngineLease::engine() const {
  FNE_REQUIRE(slot_ != nullptr, "engine() on an empty EngineLease");
  return slot_->engine;
}

const Graph& EngineLease::graph() const {
  FNE_REQUIRE(slot_ != nullptr, "graph() on an empty EngineLease");
  return *slot_->graph;
}

EngineStats EngineLease::stats_delta() const {
  FNE_REQUIRE(slot_ != nullptr, "stats_delta() on an empty EngineLease");
  return slot_->engine.stats() - slot_->at_lease;
}

void EngineLease::release() {
  if (slot_ != nullptr && cache_ != nullptr) {
    cache_->release(std::move(slot_));
  }
  slot_.reset();
  cache_ = nullptr;
}

// ---------------------------------------------------------------------------
// EngineCache
// ---------------------------------------------------------------------------

EngineCache& EngineCache::instance() {
  static EngineCache cache;
  return cache;
}

std::uint64_t EngineCache::normalized_seed(const std::string& topology,
                                           std::uint64_t build_seed) const {
  // Unseeded families build the same graph for every seed; folding the
  // key to 0 lets scenarios that differ only in their (fault) seed share
  // one graph and one engine pool.
  return TopologyRegistry::instance().at(topology).seeded ? build_seed : 0;
}

std::shared_ptr<const Graph> EngineCache::graph(const std::string& topology,
                                                const Params& params,
                                                std::uint64_t build_seed) {
  const std::uint64_t seed = normalized_seed(topology, build_seed);
  const GraphKey key{topology, params.to_string(), seed};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = graphs_.find(key);
    if (it != graphs_.end()) {
      ++stats_.graph_hits;
      return it->second;
    }
  }
  // Build OUTSIDE the lock: topology factories can be expensive and the
  // campaign construction phase builds many distinct graphs in parallel.
  // A concurrent duplicate build is harmless — factories are pure, and
  // the loser's copy is discarded below.
  auto built = std::make_shared<const Graph>(
      TopologyRegistry::instance().build(topology, params, seed));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = graphs_.emplace(key, std::move(built));
  if (inserted) {
    ++stats_.graph_builds;
  } else {
    ++stats_.graph_hits;
  }
  return it->second;
}

EngineLease EngineCache::lease(const std::string& topology, const Params& params,
                               std::uint64_t build_seed, ExpansionKind kind) {
  const std::uint64_t seed = normalized_seed(topology, build_seed);
  const EngineKey key{topology, params.to_string(), seed, static_cast<int>(kind)};
  std::unique_ptr<EngineLease::Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    const auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      slot = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.engine_hits;
    }
  }
  if (slot == nullptr) {
    std::shared_ptr<const Graph> g = graph(topology, params, build_seed);
    slot = std::make_unique<EngineLease::Slot>(key, std::move(g), kind);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.engine_builds;
  }
  // The one cross-lease channel is the workspace's warm Fiedler cache;
  // dropping it here makes a cache hit indistinguishable from a fresh
  // engine — the whole bit-identity story of the campaign layer.
  slot->engine.drop_warm_state();
  slot->at_lease = slot->engine.stats();
  return EngineLease(this, std::move(slot));
}

void EngineCache::release(std::unique_ptr<EngineLease::Slot> slot) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Bound the idle pool per key: an engine owns full workspace buffers
  // (Krylov basis, BFS queues, sub-CSR pool), and a burst of wide
  // campaigns must not pin them all forever.  kMaxIdlePerKey matches the
  // widest pool a single host realistically runs; excess engines are
  // simply destroyed (the next lease rebuilds one — correctness is
  // lease-local either way).
  auto& pool = idle_[slot->key];
  if (pool.size() < kMaxIdlePerKey) pool.push_back(std::move(slot));
}

EngineCacheStats EngineCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t EngineCache::idle_engines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, pool] : idle_) total += pool.size();
  return total;
}

std::size_t EngineCache::cached_graphs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

void EngineCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  idle_.clear();
  graphs_.clear();
}

// ---------------------------------------------------------------------------
// ExecutorPool
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::string executor_error_message(std::size_t failed, std::size_t total,
                                                 const std::string& first) {
  return "executor pool: " + std::to_string(failed) + " of " + std::to_string(total) +
         " jobs failed; first: " + first;
}

[[nodiscard]] std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "(non-standard exception)";
  }
}

}  // namespace

ExecutorError::ExecutorError(std::size_t failed, std::size_t total, std::string first_message)
    : PreconditionError(executor_error_message(failed, total, first_message)),
      failed_(failed),
      total_(total),
      first_(std::move(first_message)) {}

void ExecutorPool::run(std::size_t jobs, int threads,
                       const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  threads = std::clamp<int>(threads, 1, static_cast<int>(std::min<std::size_t>(
                                            jobs, static_cast<std::size_t>(1) << 10)));

  // Failure policy (same for inline and pooled execution): every job runs
  // even when earlier ones threw — they are independent by the pool's
  // purity contract — and the caller gets ONE aggregated ExecutorError.
  std::size_t failed = 0;
  std::string first_message;
  std::mutex error_mutex;
  const auto record_failure = [&] {
    const std::string what = describe_current_exception();
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (failed++ == 0) first_message = what;
  };

  if (threads == 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      try {
        fn(i);
      } catch (...) {
        record_failure();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < jobs; i = next.fetch_add(1)) {
          try {
            fn(i);
          } catch (...) {
            record_failure();
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  if (failed > 0) throw ExecutorError(failed, jobs, std::move(first_message));
}

}  // namespace fne
