#include "api/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "api/registry.hpp"
#include "util/require.hpp"

namespace fne {

// ---------------------------------------------------------------------------
// EngineLease
// ---------------------------------------------------------------------------

EngineLease::EngineLease(EngineCache* cache, std::unique_ptr<Slot> slot) noexcept
    : cache_(cache), slot_(std::move(slot)) {}

EngineLease::EngineLease(EngineLease&& o) noexcept
    : cache_(o.cache_), slot_(std::move(o.slot_)) {
  o.cache_ = nullptr;
}

EngineLease& EngineLease::operator=(EngineLease&& o) noexcept {
  if (this != &o) {
    release();
    cache_ = o.cache_;
    slot_ = std::move(o.slot_);
    o.cache_ = nullptr;
  }
  return *this;
}

EngineLease::~EngineLease() { release(); }

PruneEngine& EngineLease::engine() const {
  FNE_REQUIRE(slot_ != nullptr, "engine() on an empty EngineLease");
  return slot_->engine;
}

const Graph& EngineLease::graph() const {
  FNE_REQUIRE(slot_ != nullptr, "graph() on an empty EngineLease");
  return *slot_->graph;
}

EngineStats EngineLease::stats_delta() const {
  FNE_REQUIRE(slot_ != nullptr, "stats_delta() on an empty EngineLease");
  return slot_->engine.stats() - slot_->at_lease;
}

void EngineLease::release() {
  if (slot_ != nullptr && cache_ != nullptr) {
    cache_->release(std::move(slot_));
  }
  slot_.reset();
  cache_ = nullptr;
}

// ---------------------------------------------------------------------------
// EngineCache
// ---------------------------------------------------------------------------

EngineCache& EngineCache::instance() {
  static EngineCache cache;
  return cache;
}

std::uint64_t EngineCache::normalized_seed(const std::string& topology,
                                           std::uint64_t build_seed) const {
  // Unseeded families build the same graph for every seed; folding the
  // key to 0 lets scenarios that differ only in their (fault) seed share
  // one graph and one engine pool.
  return TopologyRegistry::instance().at(topology).seeded ? build_seed : 0;
}

namespace {

/// The params component of a cache key.  Entries whose build output
/// depends on state beyond the params (the `file` topology's on-disk
/// bytes) declare a cache_salt; appending it here means a rewritten file
/// can never be served a stale cached graph or engine (DESIGN.md §14).
[[nodiscard]] std::string keyed_params(const std::string& topology, const Params& params) {
  std::string key = params.to_string();
  const std::string salt = topology_cache_salt(topology, params);
  if (!salt.empty()) key += "|" + salt;
  return key;
}

}  // namespace

std::shared_ptr<const Graph> EngineCache::graph(const std::string& topology,
                                                const Params& params,
                                                std::uint64_t build_seed) {
  const std::uint64_t seed = normalized_seed(topology, build_seed);
  const GraphKey key{topology, keyed_params(topology, params), seed};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = graphs_.find(key);
    if (it != graphs_.end()) {
      ++stats_.graph_hits;
      it->second.tick = ++tick_;
      return it->second.graph;
    }
  }
  // Build OUTSIDE the lock: topology factories can be expensive and the
  // campaign construction phase builds many distinct graphs in parallel.
  // A concurrent duplicate build is harmless — factories are pure, and
  // the loser's copy is discarded below.
  auto built = std::make_shared<const Graph>(
      TopologyRegistry::instance().build(topology, params, seed));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = graphs_.find(key);
  if (it != graphs_.end()) {
    ++stats_.graph_hits;
    it->second.tick = ++tick_;
    return it->second.graph;
  }
  ++stats_.graph_builds;
  GraphEntry entry;
  entry.graph = std::move(built);
  entry.bytes = entry.graph->memory_bytes();
  entry.tick = ++tick_;
  std::shared_ptr<const Graph> out = entry.graph;
  add_resident_locked(entry.bytes);
  graphs_.emplace(key, std::move(entry));
  enforce_budget_locked();
  return out;
}

EngineLease EngineCache::lease(const std::string& topology, const Params& params,
                               std::uint64_t build_seed, ExpansionKind kind) {
  const std::uint64_t seed = normalized_seed(topology, build_seed);
  const EngineKey key{topology, keyed_params(topology, params), seed, static_cast<int>(kind)};
  std::unique_ptr<EngineLease::Slot> slot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    const auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      // A leased engine leaves the cache's residency: it is owned by the
      // lease until release() re-measures and re-charges it.
      IdleEngine& entry = it->second.back();
      slot = std::move(entry.slot);
      stats_.bytes_resident -= std::min(stats_.bytes_resident, entry.bytes);
      it->second.pop_back();
      ++stats_.engine_hits;
    }
  }
  if (slot == nullptr) {
    std::shared_ptr<const Graph> g = graph(topology, params, build_seed);
    slot = std::make_unique<EngineLease::Slot>(key, std::move(g), kind);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.engine_builds;
  }
  // The one cross-lease channel is the workspace's warm Fiedler cache;
  // dropping it here makes a cache hit indistinguishable from a fresh
  // engine — the whole bit-identity story of the campaign layer.
  slot->engine.drop_warm_state();
  slot->at_lease = slot->engine.stats();
  return EngineLease(this, std::move(slot));
}

void EngineCache::release(std::unique_ptr<EngineLease::Slot> slot) {
  // Measure OUTSIDE the lock: memory_bytes walks the workspace's buffer
  // list, and the lease destructor runs on every worker thread.
  const std::uint64_t bytes = slot->engine.memory_bytes();
  const std::lock_guard<std::mutex> lock(mutex_);
  // Bound the idle pool per key: an engine owns full workspace buffers
  // (Krylov basis, BFS queues, sub-CSR pool), and a burst of wide
  // campaigns must not pin them all forever.  kMaxIdlePerKey matches the
  // widest pool a single host realistically runs; excess engines are
  // simply destroyed (the next lease rebuilds one — correctness is
  // lease-local either way).
  auto& pool = idle_[slot->key];
  if (pool.size() >= kMaxIdlePerKey) return;
  IdleEngine entry;
  entry.slot = std::move(slot);
  entry.bytes = bytes;
  entry.tick = ++tick_;
  add_resident_locked(entry.bytes);
  pool.push_back(std::move(entry));
  enforce_budget_locked();
}

void EngineCache::add_resident_locked(std::uint64_t bytes) {
  stats_.bytes_resident += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_resident);
}

void EngineCache::enforce_budget_locked() {
  if (budget_bytes_ == 0) return;
  while (stats_.bytes_resident > budget_bytes_) {
    // Victim: the least-recently-used unleased entry, engines and graphs
    // competing on one LRU clock.  Evicting a graph also drops its idle
    // engines (their slots hold shared_ptrs to it, so the bytes would
    // stay pinned otherwise); campaign-held references keep the Graph
    // alive until they drop — the cache only stops pinning it.
    const IdleEngine* engine_victim = nullptr;
    auto engine_pool = idle_.end();
    std::size_t engine_index = 0;
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        if (engine_victim == nullptr || it->second[i].tick < engine_victim->tick) {
          engine_victim = &it->second[i];
          engine_pool = it;
          engine_index = i;
        }
      }
    }
    auto graph_victim = graphs_.end();
    for (auto it = graphs_.begin(); it != graphs_.end(); ++it) {
      if (graph_victim == graphs_.end() || it->second.tick < graph_victim->second.tick) {
        graph_victim = it;
      }
    }
    if (engine_victim != nullptr &&
        (graph_victim == graphs_.end() || engine_victim->tick < graph_victim->second.tick)) {
      stats_.bytes_resident -= std::min<std::uint64_t>(stats_.bytes_resident, engine_victim->bytes);
      ++stats_.evictions;
      engine_pool->second.erase(engine_pool->second.begin() +
                                static_cast<std::ptrdiff_t>(engine_index));
      if (engine_pool->second.empty()) idle_.erase(engine_pool);
    } else if (graph_victim != graphs_.end()) {
      const Graph* graph = graph_victim->second.graph.get();
      stats_.bytes_resident -=
          std::min<std::uint64_t>(stats_.bytes_resident, graph_victim->second.bytes);
      ++stats_.evictions;
      graphs_.erase(graph_victim);
      for (auto it = idle_.begin(); it != idle_.end();) {
        auto& pool = it->second;
        for (std::size_t i = pool.size(); i-- > 0;) {
          if (pool[i].slot->graph.get() != graph) continue;
          stats_.bytes_resident -= std::min<std::uint64_t>(stats_.bytes_resident, pool[i].bytes);
          ++stats_.evictions;
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        }
        it = pool.empty() ? idle_.erase(it) : std::next(it);
      }
    } else {
      break;  // nothing evictable left (everything is leased out)
    }
  }
}

void EngineCache::set_budget_bytes(std::uint64_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = bytes;
  enforce_budget_locked();
}

std::uint64_t EngineCache::budget_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

EngineCacheStats EngineCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t EngineCache::idle_engines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, pool] : idle_) total += pool.size();
  return total;
}

std::size_t EngineCache::cached_graphs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

void EngineCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  idle_.clear();
  graphs_.clear();
  stats_.bytes_resident = 0;  // counters survive; the residency gauge resets
}

// ---------------------------------------------------------------------------
// ExecutorPool
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::string executor_error_message(std::size_t failed, std::size_t total,
                                                 const std::string& first) {
  return "executor pool: " + std::to_string(failed) + " of " + std::to_string(total) +
         " jobs failed; first: " + first;
}

[[nodiscard]] std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "(non-standard exception)";
  }
}

}  // namespace

ExecutorError::ExecutorError(std::size_t failed, std::size_t total, std::string first_message)
    : PreconditionError(executor_error_message(failed, total, first_message)),
      failed_(failed),
      total_(total),
      first_(std::move(first_message)) {}

void ExecutorPool::run(std::size_t jobs, int threads,
                       const std::function<void(std::size_t)>& fn, const CancelToken* cancel) {
  if (jobs == 0) return;
  threads = std::clamp<int>(threads, 1, static_cast<int>(std::min<std::size_t>(
                                            jobs, static_cast<std::size_t>(1) << 10)));

  // Failure policy (same for inline and pooled execution): every job runs
  // even when earlier ones threw — they are independent by the pool's
  // purity contract — and the caller gets ONE aggregated ExecutorError.
  // A cancellation token is the one exception: once it fires, workers
  // stop CLAIMING (in-flight jobs still finish), and the skipped tail is
  // reported as CancelledError after the drain.
  std::size_t failed = 0;
  std::string first_message;
  std::mutex error_mutex;
  const auto record_failure = [&] {
    const std::string what = describe_current_exception();
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (failed++ == 0) first_message = what;
  };
  const auto cancelled = [&] { return cancel != nullptr && cancel->cancelled(); };
  std::atomic<std::size_t> completed{0};

  if (threads == 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      if (cancelled()) break;
      try {
        fn(i);
      } catch (...) {
        record_failure();
      }
      completed.fetch_add(1);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        while (!cancelled()) {
          const std::size_t i = next.fetch_add(1);
          if (i >= jobs) break;
          try {
            fn(i);
          } catch (...) {
            record_failure();
          }
          completed.fetch_add(1);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  if (failed > 0) throw ExecutorError(failed, jobs, std::move(first_message));
  if (completed.load() < jobs) {
    throw CancelledError("executor pool: cancelled after " + std::to_string(completed.load()) +
                         " of " + std::to_string(jobs) + " jobs");
  }
}

}  // namespace fne
