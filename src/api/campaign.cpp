#include "api/campaign.hpp"

#include <algorithm>
#include <initializer_list>
#include <utility>

#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "spectral/lanczos.hpp"
#include "store/key.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fne {

namespace {

// ---------------------------------------------------------------------------
// JSON -> Campaign
// ---------------------------------------------------------------------------

/// Registry-style hygiene for config files: an unknown key is a typo and
/// fails loudly, naming the offender and the context.
void check_keys(const JsonValue& obj, const std::string& context,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members()) {
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&](const char* a) { return key == a; });
    if (!known) {
      std::string list;
      for (const char* a : allowed) {
        if (!list.empty()) list += ", ";
        list += a;
      }
      FNE_REQUIRE(false, "campaign: " + context + " has no key '" + key +
                             "' (allowed: " + list + ")");
    }
  }
}

[[nodiscard]] Params params_from_json(const JsonValue& obj, const std::string& context) {
  Params out;
  for (const auto& [key, value] : obj.members()) {
    switch (value.kind()) {
      case JsonValue::Kind::kString:
        out.set(key, value.as_string());
        break;
      case JsonValue::Kind::kBool:
        out.set(key, std::string(value.as_bool() ? "1" : "0"));
        break;
      case JsonValue::Kind::kNumber: {
        const double d = value.as_number();
        // Integral numbers round-trip as integers so "side": 24 matches
        // the flag form side=24 byte-for-byte in Params::to_string().
        if (static_cast<double>(static_cast<std::int64_t>(d)) == d) {
          out.set(key, static_cast<std::int64_t>(d));
        } else {
          out.set(key, d);
        }
        break;
      }
      default:
        FNE_REQUIRE(false, "campaign: " + context + "." + key +
                               " must be a scalar (string, number or bool)");
    }
  }
  return out;
}

void apply_scenario_json(Scenario& s, const JsonValue& obj) {
  check_keys(obj, "scenario entry",
             {"preset", "name", "seed", "repetitions", "topology", "fault", "prune", "metrics",
              "sweep"});
  if (const JsonValue* v = obj.find("name")) s.name = v->as_string();
  if (const JsonValue* v = obj.find("seed")) s.seed = static_cast<std::uint64_t>(v->as_int());
  if (const JsonValue* v = obj.find("repetitions")) {
    s.repetitions = static_cast<int>(v->as_int());
  }
  if (const JsonValue* v = obj.find("topology")) {
    check_keys(*v, "topology", {"name", "params"});
    if (const JsonValue* name = v->find("name")) {
      if (name->as_string() != s.topology.name) s.topology = {name->as_string(), Params{}};
    }
    if (const JsonValue* params = v->find("params")) {
      const Params parsed = params_from_json(*params, "topology.params");
      for (const auto& [k, val] : parsed.values()) s.topology.params.set(k, val);
    }
  }
  if (const JsonValue* v = obj.find("fault")) {
    check_keys(*v, "fault", {"name", "params"});
    if (const JsonValue* name = v->find("name")) {
      if (name->as_string() != s.fault.name) s.fault = {name->as_string(), Params{}};
    }
    if (const JsonValue* params = v->find("params")) {
      const Params parsed = params_from_json(*params, "fault.params");
      for (const auto& [k, val] : parsed.values()) s.fault.params.set(k, val);
    }
  }
  if (const JsonValue* v = obj.find("prune")) {
    check_keys(*v, "prune",
               {"kind", "alpha", "epsilon", "fast", "max_iterations", "spectral_mode",
                "filter_degree"});
    if (const JsonValue* kind = v->find("kind")) {
      const std::string& k = kind->as_string();
      FNE_REQUIRE(k == "node" || k == "edge", "campaign: prune.kind must be node or edge");
      s.prune.kind = k == "node" ? ExpansionKind::Node : ExpansionKind::Edge;
    }
    if (const JsonValue* a = v->find("alpha")) s.prune.alpha = a->as_number();
    if (const JsonValue* e = v->find("epsilon")) s.prune.epsilon = e->as_number();
    if (const JsonValue* f = v->find("fast")) s.prune.fast = f->as_bool();
    if (const JsonValue* m = v->find("max_iterations")) {
      s.prune.max_iterations = static_cast<int>(m->as_int());
    }
    // Eigensolver acceleration for the cut finder's spectral stage
    // (DESIGN.md §10).  A typo'd mode name fails here, at parse time,
    // with the valid names listed.
    if (const JsonValue* m = v->find("spectral_mode")) {
      s.prune.finder.spectral_mode = spectral_mode_from_string(m->as_string());
    }
    if (const JsonValue* d = v->find("filter_degree")) {
      const auto degree = static_cast<int>(d->as_int());
      FNE_REQUIRE(degree >= 0, "campaign: prune.filter_degree must be >= 0");
      s.prune.finder.filter_degree = degree;
    }
  }
  if (const JsonValue* v = obj.find("metrics")) {
    check_keys(*v, "metrics",
               {"fragmentation", "expansion", "verify_trace", "bracket_exact_limit",
                "requests"});
    if (const JsonValue* f = v->find("fragmentation")) s.metrics.fragmentation = f->as_bool();
    if (const JsonValue* e = v->find("expansion")) s.metrics.expansion = e->as_bool();
    if (const JsonValue* t = v->find("verify_trace")) s.metrics.verify_trace = t->as_bool();
    if (const JsonValue* b = v->find("bracket_exact_limit")) {
      s.metrics.bracket_exact_limit = static_cast<vid>(b->as_int());
    }
    if (const JsonValue* r = v->find("requests")) {
      // Registered-metric requests replace the preset's list wholesale
      // (like a topology name change: a partial merge of two metric
      // lists has no sensible semantics).  Unknown metric names and
      // undeclared params fail here, at parse time, with the registered
      // alternatives listed — same hygiene as every other unknown key.
      s.metrics.requests.clear();
      for (const JsonValue& item : r->items()) {
        check_keys(item, "metrics.requests entry", {"name", "params"});
        MetricRequest request;
        request.name = item.at("name").as_string();
        if (const JsonValue* p = item.find("params")) {
          request.params =
              params_from_json(*p, "metrics.requests." + request.name + ".params");
        }
        MetricsRegistry::instance().check(request.name, request.params);
        for (const MetricRequest& prev : s.metrics.requests) {
          FNE_REQUIRE(prev.name != request.name,
                      "campaign: metrics.requests lists '" + request.name +
                          "' twice (records are keyed by name)");
        }
        s.metrics.requests.push_back(std::move(request));
      }
    }
  }
}

[[nodiscard]] std::optional<SweepSpec> sweep_from_json(const JsonValue& obj) {
  const JsonValue* v = obj.find("sweep");
  if (v == nullptr) return std::nullopt;
  check_keys(*v, "sweep", {"param", "values", "mode"});
  SweepSpec sweep;
  sweep.param = v->at("param").as_string();
  for (const JsonValue& value : v->at("values").items()) {
    sweep.values.push_back(value.as_number());
  }
  FNE_REQUIRE(!sweep.values.empty(), "campaign: sweep.values must be non-empty");
  if (const JsonValue* mode = v->find("mode")) {
    const std::string& m = mode->as_string();
    FNE_REQUIRE(m == "independent" || m == "monotone",
                "campaign: sweep.mode must be independent or monotone");
    sweep.mode = m == "monotone" ? SweepMode::kMonotone : SweepMode::kIndependent;
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// Report serialization
// ---------------------------------------------------------------------------

void put_engine_stats(JsonObject& obj, const EngineStats& st) {
  obj.put("runs", st.runs)
      .put("iterations", st.iterations)
      .put("eigensolves", st.eigensolves)
      .put("stale_sweeps", st.stale_sweeps)
      .put("stale_sweep_hits", st.stale_sweep_hits)
      .put("disconnected_culls", st.disconnected_culls)
      .put("relabel_bfs_calls", st.relabel_bfs_calls)
      .put("relabel_bfs_vertices", st.relabel_bfs_vertices);
}

[[nodiscard]] std::string run_record_json(const ScenarioRun& run, const MetricsSpec& metrics,
                                          bool include_timing) {
  JsonObject obj;
  obj.put("rep", run.repetition)
      .put("fault_seed", run.fault_seed)
      .put("finder_seed", run.finder_seed)
      .put("faults", static_cast<std::uint64_t>(run.faults))
      .put("alive", static_cast<std::uint64_t>(run.alive.count()))
      .put("survivors", static_cast<std::uint64_t>(run.prune.survivors.count()))
      .put("survivor_hash", mask_hash(run.prune.survivors))
      .put("culled", static_cast<std::uint64_t>(run.prune.total_culled))
      .put("iterations", run.prune.iterations);
  if (metrics.fragmentation) {
    obj.put("gamma", run.fragmentation.gamma)
        .put("components", static_cast<std::uint64_t>(run.fragmentation.num_components));
  }
  if (run.expansion.has_value()) {
    obj.put("expansion_lower", run.expansion->lower)
        .put("expansion_upper", run.expansion->upper);
  }
  if (run.trace.has_value()) obj.put("trace_valid", run.trace->valid);
  if (!run.metrics.empty()) {
    // Registered-metric payloads are deterministic by the MetricsRegistry
    // contract, so they belong to the thread-count-independent payload.
    JsonObject metrics_obj;
    for (const MetricRecord& m : run.metrics) metrics_obj.put_json(m.name, m.payload);
    obj.put_json("metrics", metrics_obj.dump());
  }
  if (include_timing) obj.put("millis", run.millis);
  return obj.dump();
}

[[nodiscard]] std::string scenario_report_json(const ScenarioReport& report,
                                               bool include_timing) {
  JsonObject obj;
  const Scenario& s = report.scenario;
  obj.put("name", s.name)
      .put("topology", s.topology.name)
      .put("topo_params", s.topology.params.to_string())
      .put("fault", s.fault.name)
      .put("fault_params", s.fault.params.to_string())
      .put("kind", s.prune.kind == ExpansionKind::Node ? "node" : "edge")
      .put("fast", s.prune.fast)
      .put("n", static_cast<std::uint64_t>(report.n))
      .put("alpha", report.alpha)
      .put("epsilon", report.epsilon)
      .put("seed", s.seed)
      .put("repetitions", s.repetitions);
  if (!s.metrics.requests.empty()) {
    std::string requested;
    for (const MetricRequest& r : s.metrics.requests) {
      if (!requested.empty()) requested += ";";
      requested += r.name;
      if (!r.params.empty()) requested += "[" + r.params.to_string() + "]";
    }
    obj.put("metrics_requested", requested);
  }
  if (report.sweep.has_value()) {
    obj.put("sweep_param", report.sweep->param)
        .put("sweep_mode",
             report.sweep->mode == SweepMode::kMonotone ? "monotone" : "independent")
        .put_numbers("sweep_values", report.sweep->values);
  }
  std::string runs = "[";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    if (i > 0) runs += ", ";
    runs += run_record_json(report.runs[i], s.metrics, include_timing);
  }
  obj.put_json("runs", runs + "]");
  JsonObject engine;
  put_engine_stats(engine, report.engine);
  obj.put_json("engine", engine.dump());
  if (include_timing) obj.put("millis", report.millis);
  return obj.dump();
}

}  // namespace

namespace {

[[nodiscard]] Campaign campaign_from_doc(const JsonValue& doc) {
  check_keys(doc, "campaign", {"name", "scenarios"});
  Campaign campaign;
  if (const JsonValue* name = doc.find("name")) campaign.name = name->as_string();
  const JsonValue& entries = doc.at("scenarios");
  FNE_REQUIRE(!entries.items().empty(), "campaign: scenarios must be non-empty");
  for (const JsonValue& entry : entries.items()) {
    CampaignEntry e;
    if (const JsonValue* preset = entry.find("preset")) {
      e.scenario = named_scenario(preset->as_string());
    }
    apply_scenario_json(e.scenario, entry);
    e.sweep = sweep_from_json(entry);
    campaign.entries.push_back(std::move(e));
  }
  return campaign;
}

}  // namespace

Campaign campaign_from_json(const std::string& text) {
  return campaign_from_doc(JsonValue::parse(text));
}

Campaign campaign_from_file(const std::string& path) {
  Campaign campaign = campaign_from_doc(JsonValue::parse_file(path));
  if (campaign.name == "campaign") campaign.name = path;  // unnamed files report their path
  return campaign;
}

Campaign catalog_campaign(int repetitions) {
  FNE_REQUIRE(repetitions >= 1, "catalog campaign needs >= 1 repetition");
  Campaign campaign;
  campaign.name = "catalog";
  for (Scenario s : scenario_catalog()) {
    s.repetitions = repetitions;
    campaign.entries.push_back({std::move(s), std::nullopt});
  }
  return campaign;
}

EngineStats CampaignReport::total_engine_stats() const {
  EngineStats total;
  for (const ScenarioReport& s : scenarios) total += s.engine;
  return total;
}

std::string CampaignReport::to_json(bool include_timing) const {
  JsonObject top;
  top.put("name", name).put("kind", "campaign_report");
  std::string entries = "[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i > 0) entries += ", ";
    entries += scenario_report_json(scenarios[i], include_timing);
  }
  top.put_json("scenarios", entries + "]");
  JsonObject engine;
  put_engine_stats(engine, total_engine_stats());
  top.put_json("engine_total", engine.dump());
  if (include_timing) {
    top.put("threads", threads).put("millis", millis);
    JsonObject cache_obj;
    cache_obj.put("leases", cache.leases)
        .put("engine_hits", cache.engine_hits)
        .put("engine_builds", cache.engine_builds)
        .put("graph_hits", cache.graph_hits)
        .put("graph_builds", cache.graph_builds)
        .put("evictions", cache.evictions)
        .put("bytes_resident", cache.bytes_resident)
        .put("peak_bytes", cache.peak_bytes);
    top.put_json("cache", cache_obj.dump());
    if (store_enabled) {
      // The hit/miss split depends on store state, not on the campaign —
      // timing payload only, like the cache counters above.
      JsonObject store_obj;
      store_obj.put("hits", store.hits)
          .put("misses", store.misses)
          .put("bytes_loaded", store.bytes_loaded)
          .put("bytes_committed", store.bytes_committed)
          .put("corrupt_records", store.corrupt_records)
          .put("truncated_bytes", store.truncated_bytes)
          .put("rotated_files", store.rotated_files);
      top.put_json("store", store_obj.dump());
    }
  }
  return top.dump();
}

// ---------------------------------------------------------------------------
// CampaignPlan
// ---------------------------------------------------------------------------

CampaignPlan::CampaignPlan(const Campaign& campaign, int threads) : campaign_(campaign) {
  FNE_REQUIRE(!campaign_.entries.empty(), "campaign needs >= 1 entry");
  FNE_REQUIRE(threads >= 1, "campaign threads must be >= 1");

  // Resolve every entry: graph build (cache-shared) and α/ε measurement,
  // parallelized across entries.  Runner construction is a pure function
  // of the Scenario, so placement cannot change a bit.
  const std::size_t num_entries = campaign_.entries.size();
  runners_.resize(num_entries);
  ExecutorPool::run(num_entries, threads, [&](std::size_t e) {
    runners_[e] = std::make_unique<ScenarioRunner>(campaign_.entries[e].scenario);
  });

  // Flatten the schedule.  A monotone sweep chain is ONE serial cell (its
  // points are order-dependent); everything else is one cell per run.
  // Non-chain cells whose entry requests split-declared metrics get one
  // kMetric child per such request, scheduled right after their parent.
  // Keys are computed unconditionally: the store wants them, and the dist
  // protocol names every job by its cell key on the wire.
  results_.resize(num_entries);
  for (std::size_t e = 0; e < num_entries; ++e) {
    const CampaignEntry& entry = campaign_.entries[e];
    std::vector<std::size_t> split_requests;
    for (std::size_t i = 0; i < entry.scenario.metrics.requests.size(); ++i) {
      if (MetricsRegistry::instance().at(entry.scenario.metrics.requests[i].name).split_job) {
        split_requests.push_back(i);
      }
    }
    const auto push_cell = [&](CampaignJob job) {
      const std::size_t cell = jobs_.size();
      jobs_.push_back(std::move(job));
      children_.emplace_back();
      ++num_cells_;
      if (jobs_[cell].kind == CampaignJob::Kind::kChain) return;
      for (const std::size_t r : split_requests) {
        CampaignJob m;
        m.kind = CampaignJob::Kind::kMetric;
        m.entry = e;
        m.rep = jobs_[cell].rep;
        m.sweep_point = jobs_[cell].sweep_point;
        m.request = r;
        m.parent = cell;
        m.key = jobs_[cell].key;
        children_[cell].push_back(jobs_.size());
        jobs_.push_back(std::move(m));
        children_.emplace_back();
      }
    };
    if (entry.sweep.has_value() && entry.sweep->mode == SweepMode::kMonotone) {
      results_[e].resize(0);
      CampaignJob job;
      job.kind = CampaignJob::Kind::kChain;
      job.entry = e;
      job.key = store_cell_key(entry.scenario, entry.scenario.fault, 0, &*entry.sweep);
      push_cell(std::move(job));
    } else if (entry.sweep.has_value()) {
      results_[e].resize(entry.sweep->values.size());
      for (std::size_t j = 0; j < entry.sweep->values.size(); ++j) {
        CampaignJob job;
        job.kind = CampaignJob::Kind::kSweepPoint;
        job.entry = e;
        job.sweep_point = static_cast<int>(j);
        FaultSpec fault = entry.scenario.fault;
        fault.params.set(entry.sweep->param, entry.sweep->values[j]);
        job.key = store_cell_key(entry.scenario, fault, 0);
        push_cell(std::move(job));
      }
    } else {
      results_[e].resize(static_cast<std::size_t>(entry.scenario.repetitions));
      for (int r = 0; r < entry.scenario.repetitions; ++r) {
        CampaignJob job;
        job.kind = CampaignJob::Kind::kRep;
        job.entry = e;
        job.rep = r;
        job.key = store_cell_key(entry.scenario, entry.scenario.fault, r);
        push_cell(std::move(job));
      }
    }
  }

  job_done_.assign(jobs_.size(), 0);
  served_.assign(jobs_.size(), 0);
  missing_metrics_.assign(jobs_.size(), 0);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    missing_metrics_[i] = children_[i].size();
  }
  remaining_ = jobs_.size();

  Fnv1a h;
  h.text(campaign_.name);
  for (const CampaignJob& job : jobs_) {
    h.word(static_cast<std::uint64_t>(job.kind));
    h.word(job.entry);
    h.word(static_cast<std::uint64_t>(job.rep));
    h.word(static_cast<std::uint64_t>(static_cast<std::int64_t>(job.sweep_point)));
    h.word(job.request);
    h.word(job.parent);
    h.text(job.key);
  }
  fingerprint_ = h.value();
}

const CampaignJob& CampaignPlan::job(std::size_t i) const {
  FNE_REQUIRE(i < jobs_.size(), "campaign plan: job index out of range");
  return jobs_[i];
}

std::size_t CampaignPlan::cell_slot(const CampaignJob& job) const {
  return job.sweep_point >= 0 ? static_cast<std::size_t>(job.sweep_point)
                              : static_cast<std::size_t>(job.rep);
}

std::size_t CampaignPlan::expected_runs(std::size_t i) const {
  const CampaignJob& job = this->job(i);
  FNE_REQUIRE(job.kind != CampaignJob::Kind::kMetric,
              "campaign plan: expected_runs on a metric job");
  return job.kind == CampaignJob::Kind::kChain
             ? campaign_.entries[job.entry].sweep->values.size()
             : 1;
}

std::vector<ScenarioRun> CampaignPlan::compute_cell(std::size_t i) const {
  const CampaignJob& job = this->job(i);
  const CampaignEntry& entry = campaign_.entries[job.entry];
  ScenarioRunner& runner = *runners_[job.entry];
  switch (job.kind) {
    case CampaignJob::Kind::kChain:
      return runner.sweep_fault_param(entry.sweep->param, entry.sweep->values, 1,
                                      SweepMode::kMonotone);
    case CampaignJob::Kind::kSweepPoint: {
      FaultSpec fault = entry.scenario.fault;
      fault.params.set(entry.sweep->param,
                       entry.sweep->values[static_cast<std::size_t>(job.sweep_point)]);
      return {children_[i].empty() ? runner.run_isolated(fault, 0)
                                   : runner.run_isolated_deferred(fault, 0)};
    }
    case CampaignJob::Kind::kRep:
      return {children_[i].empty() ? runner.run_isolated(entry.scenario.fault, job.rep)
                                   : runner.run_isolated_deferred(entry.scenario.fault,
                                                                  job.rep)};
    case CampaignJob::Kind::kMetric:
      break;
  }
  FNE_REQUIRE(false, "campaign plan: compute_cell on a metric job");
  return {};
}

MetricRecord CampaignPlan::compute_metric(std::size_t i,
                                          const ScenarioRun& parent_run) const {
  const CampaignJob& job = this->job(i);
  FNE_REQUIRE(job.kind == CampaignJob::Kind::kMetric,
              "campaign plan: compute_metric on a cell job");
  return runners_[job.entry]->compute_metric_request(parent_run, job.request);
}

ScenarioRun CampaignPlan::parent_run(std::size_t metric_job) const {
  const CampaignJob& job = this->job(metric_job);
  FNE_REQUIRE(job.kind == CampaignJob::Kind::kMetric,
              "campaign plan: parent_run on a cell job");
  const std::lock_guard<std::mutex> lock(mutex_);
  FNE_REQUIRE(job_done_[job.parent] != 0,
              "campaign plan: parent cell not done for metric job");
  return results_[job.entry][cell_slot(job)];
}

void CampaignPlan::commit_locked(std::size_t cell) {
  // Commit a COMPLETE cell (all split metrics merged) so a killed run
  // resumed from the store never serves half-measured records.  Served
  // cells came from the store and are never re-written (first write wins
  // there anyway).
  if (store_ == nullptr || served_[cell] != 0) return;
  const CampaignJob& job = jobs_[cell];
  const std::vector<ScenarioRun>& entry_runs = results_[job.entry];
  if (job.kind == CampaignJob::Kind::kChain) {
    store_->put(job.key, encode_runs(entry_runs));
  } else {
    store_->put(job.key, encode_runs({&entry_runs[cell_slot(job)], 1}));
  }
}

bool CampaignPlan::accept_cell(std::size_t i, std::vector<ScenarioRun> runs) {
  const CampaignJob& job = this->job(i);
  FNE_REQUIRE(job.kind != CampaignJob::Kind::kMetric,
              "campaign plan: accept_cell on a metric job");
  if (runs.size() != expected_runs(i)) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job_done_[i] != 0) return false;  // duplicate completion: first write won
  if (job.kind == CampaignJob::Kind::kChain) {
    results_[job.entry] = std::move(runs);
  } else {
    results_[job.entry][cell_slot(job)] = std::move(runs.front());
  }
  job_done_[i] = 1;
  --remaining_;
  if (missing_metrics_[i] == 0) commit_locked(i);
  return true;
}

bool CampaignPlan::accept_metric(std::size_t i, MetricRecord record) {
  const CampaignJob& job = this->job(i);
  if (job.kind != CampaignJob::Kind::kMetric) return false;
  const std::string& expected_name =
      campaign_.entries[job.entry].scenario.metrics.requests[job.request].name;
  if (record.name != expected_name) return false;  // wrong/forged record
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job_done_[job.parent] == 0) return false;  // parent not merged yet
  if (job_done_[i] != 0) return false;           // duplicate completion
  results_[job.entry][cell_slot(job)].metrics[job.request] = std::move(record);
  job_done_[i] = 1;
  --remaining_;
  if (--missing_metrics_[job.parent] == 0) commit_locked(job.parent);
  return true;
}

bool CampaignPlan::done(std::size_t i) const {
  (void)this->job(i);
  const std::lock_guard<std::mutex> lock(mutex_);
  return job_done_[i] != 0;
}

bool CampaignPlan::all_done() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return remaining_ == 0;
}

std::uint64_t CampaignPlan::attach_store(ResultStore& store) {
  store.refresh();  // pick up cells committed by other processes
  const std::lock_guard<std::mutex> lock(mutex_);
  FNE_REQUIRE(store_ == nullptr, "campaign plan: store already attached");
  store_ = &store;
  store_before_ = store.stats();
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const CampaignJob& job = jobs_[i];
    if (job.kind == CampaignJob::Kind::kMetric || job_done_[i] != 0) continue;
    const std::optional<std::string> payload = store.load(job.key);
    if (!payload.has_value()) continue;
    std::optional<std::vector<ScenarioRun>> runs = decode_runs(*payload);
    // Undecodable or wrong-shape records degrade to a miss — recompute,
    // never crash.  Committed cells are always complete, so their metric
    // children complete with them.
    if (!runs.has_value() || runs->size() != expected_runs(i)) continue;
    if (job.kind == CampaignJob::Kind::kChain) {
      results_[job.entry] = std::move(*runs);
    } else {
      results_[job.entry][cell_slot(job)] = std::move(runs->front());
    }
    job_done_[i] = 1;
    served_[i] = 1;
    --remaining_;
    ++served_cells_;
    for (const std::size_t child : children_[i]) {
      job_done_[child] = 1;
      --remaining_;
      --missing_metrics_[i];
    }
  }
  return served_cells_;
}

std::uint64_t CampaignPlan::cells_served() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return served_cells_;
}

CampaignReport CampaignPlan::finish(int threads, double millis,
                                    const EngineCacheStats& cache_delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  FNE_REQUIRE(remaining_ == 0, "campaign plan: finish() before all jobs merged");
  // Per-entry engine stats fold from the runs themselves (run.engine is
  // the delta around each engine.run call): placement-independent like
  // runner totals, but ALSO reproducible from stored records — a fully
  // store-served entry reports the same stats as a computed one, keeping
  // the deterministic payload byte-identical.
  CampaignReport report;
  report.name = campaign_.name;
  report.threads = threads;
  report.scenarios.reserve(campaign_.entries.size());
  for (std::size_t e = 0; e < campaign_.entries.size(); ++e) {
    ScenarioReport sr;
    sr.scenario = runners_[e]->scenario();
    sr.sweep = campaign_.entries[e].sweep;
    sr.alpha = runners_[e]->alpha();
    sr.epsilon = runners_[e]->epsilon();
    sr.n = runners_[e]->graph().num_vertices();
    sr.runs = std::move(results_[e]);
    for (const ScenarioRun& r : sr.runs) {
      sr.engine += r.engine;
      sr.millis += r.millis;
    }
    report.scenarios.push_back(std::move(sr));
  }
  report.millis = millis;
  report.cache = cache_delta;
  if (store_ != nullptr) {
    const StoreStats store_after = store_->stats();
    report.store_enabled = true;
    report.store.hits = served_cells_;
    report.store.misses = num_cells_ - served_cells_;
    report.store.bytes_loaded = store_after.bytes_loaded - store_before_.bytes_loaded;
    report.store.bytes_committed =
        store_after.bytes_committed - store_before_.bytes_committed;
    report.store.corrupt_records = store_after.corrupt_records;
    report.store.truncated_bytes = store_after.truncated_bytes;
    report.store.rotated_files = store_after.rotated_files;
  }
  return report;
}

// ---------------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------------

CampaignRunner::CampaignRunner(Campaign campaign) : campaign_(std::move(campaign)) {
  FNE_REQUIRE(!campaign_.entries.empty(), "campaign needs >= 1 entry");
  for (const CampaignEntry& e : campaign_.entries) {
    // Validate names eagerly so a typo fails at construction, not after
    // half the campaign ran.
    (void)TopologyRegistry::instance().at(e.scenario.topology.name);
    (void)FaultModelRegistry::instance().at(e.scenario.fault.name);
    const auto& requests = e.scenario.metrics.requests;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      MetricsRegistry::instance().check(requests[i].name, requests[i].params);
      for (std::size_t j = 0; j < i; ++j) {
        FNE_REQUIRE(requests[j].name != requests[i].name,
                    "campaign entry '" + e.scenario.name + "': metric '" + requests[i].name +
                        "' requested twice (records are keyed by name)");
      }
    }
    if (e.sweep.has_value()) {
      FNE_REQUIRE(!e.sweep->values.empty(),
                  "campaign entry '" + e.scenario.name + "': sweep needs values");
    }
  }
}

CampaignReport CampaignRunner::run(int threads) { return run(threads, nullptr); }

CampaignReport CampaignRunner::run(int threads, ResultStore* store, const CancelToken* cancel) {
  FNE_REQUIRE(threads >= 1, "campaign threads must be >= 1");
  const EngineCacheStats cache_before = EngineCache::instance().stats();
  Timer wall;

  CampaignPlan plan(campaign_, threads);
  if (store != nullptr) (void)plan.attach_store(*store);

  // Pass A — pending cells on one pool; pass B — pending metric jobs.
  // The barrier between the passes is what a local runner wants (every
  // parent is done before any metric job starts); the dist coordinator
  // schedules the same plan with per-job readiness instead.
  std::vector<std::size_t> cells;
  std::vector<std::size_t> metric_jobs;
  for (std::size_t i = 0; i < plan.num_jobs(); ++i) {
    if (plan.done(i)) continue;
    (plan.job(i).kind == CampaignJob::Kind::kMetric ? metric_jobs : cells).push_back(i);
  }
  ExecutorPool::run(
      cells.size(), threads,
      [&](std::size_t p) {
        const std::size_t i = cells[p];
        FNE_REQUIRE(plan.accept_cell(i, plan.compute_cell(i)),
                    "campaign: local cell result rejected (duplicate or wrong shape)");
      },
      cancel);
  ExecutorPool::run(
      metric_jobs.size(), threads,
      [&](std::size_t p) {
        const std::size_t i = metric_jobs[p];
        FNE_REQUIRE(plan.accept_metric(i, plan.compute_metric(i, plan.parent_run(i))),
                    "campaign: local metric result rejected (duplicate or mismatched)");
      },
      cancel);

  return plan.finish(threads, wall.millis(), EngineCache::instance().stats() - cache_before);
}

}  // namespace fne
