#include "api/campaign.hpp"

#include <algorithm>
#include <initializer_list>
#include <utility>

#include "api/metrics.hpp"
#include "api/registry.hpp"
#include "spectral/lanczos.hpp"
#include "store/key.hpp"
#include "store/record.hpp"
#include "store/result_store.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/timer.hpp"

namespace fne {

namespace {

// ---------------------------------------------------------------------------
// JSON -> Campaign
// ---------------------------------------------------------------------------

/// Registry-style hygiene for config files: an unknown key is a typo and
/// fails loudly, naming the offender and the context.
void check_keys(const JsonValue& obj, const std::string& context,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members()) {
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&](const char* a) { return key == a; });
    if (!known) {
      std::string list;
      for (const char* a : allowed) {
        if (!list.empty()) list += ", ";
        list += a;
      }
      FNE_REQUIRE(false, "campaign: " + context + " has no key '" + key +
                             "' (allowed: " + list + ")");
    }
  }
}

[[nodiscard]] Params params_from_json(const JsonValue& obj, const std::string& context) {
  Params out;
  for (const auto& [key, value] : obj.members()) {
    switch (value.kind()) {
      case JsonValue::Kind::kString:
        out.set(key, value.as_string());
        break;
      case JsonValue::Kind::kBool:
        out.set(key, std::string(value.as_bool() ? "1" : "0"));
        break;
      case JsonValue::Kind::kNumber: {
        const double d = value.as_number();
        // Integral numbers round-trip as integers so "side": 24 matches
        // the flag form side=24 byte-for-byte in Params::to_string().
        if (static_cast<double>(static_cast<std::int64_t>(d)) == d) {
          out.set(key, static_cast<std::int64_t>(d));
        } else {
          out.set(key, d);
        }
        break;
      }
      default:
        FNE_REQUIRE(false, "campaign: " + context + "." + key +
                               " must be a scalar (string, number or bool)");
    }
  }
  return out;
}

void apply_scenario_json(Scenario& s, const JsonValue& obj) {
  check_keys(obj, "scenario entry",
             {"preset", "name", "seed", "repetitions", "topology", "fault", "prune", "metrics",
              "sweep"});
  if (const JsonValue* v = obj.find("name")) s.name = v->as_string();
  if (const JsonValue* v = obj.find("seed")) s.seed = static_cast<std::uint64_t>(v->as_int());
  if (const JsonValue* v = obj.find("repetitions")) {
    s.repetitions = static_cast<int>(v->as_int());
  }
  if (const JsonValue* v = obj.find("topology")) {
    check_keys(*v, "topology", {"name", "params"});
    if (const JsonValue* name = v->find("name")) {
      if (name->as_string() != s.topology.name) s.topology = {name->as_string(), Params{}};
    }
    if (const JsonValue* params = v->find("params")) {
      const Params parsed = params_from_json(*params, "topology.params");
      for (const auto& [k, val] : parsed.values()) s.topology.params.set(k, val);
    }
  }
  if (const JsonValue* v = obj.find("fault")) {
    check_keys(*v, "fault", {"name", "params"});
    if (const JsonValue* name = v->find("name")) {
      if (name->as_string() != s.fault.name) s.fault = {name->as_string(), Params{}};
    }
    if (const JsonValue* params = v->find("params")) {
      const Params parsed = params_from_json(*params, "fault.params");
      for (const auto& [k, val] : parsed.values()) s.fault.params.set(k, val);
    }
  }
  if (const JsonValue* v = obj.find("prune")) {
    check_keys(*v, "prune",
               {"kind", "alpha", "epsilon", "fast", "max_iterations", "spectral_mode",
                "filter_degree"});
    if (const JsonValue* kind = v->find("kind")) {
      const std::string& k = kind->as_string();
      FNE_REQUIRE(k == "node" || k == "edge", "campaign: prune.kind must be node or edge");
      s.prune.kind = k == "node" ? ExpansionKind::Node : ExpansionKind::Edge;
    }
    if (const JsonValue* a = v->find("alpha")) s.prune.alpha = a->as_number();
    if (const JsonValue* e = v->find("epsilon")) s.prune.epsilon = e->as_number();
    if (const JsonValue* f = v->find("fast")) s.prune.fast = f->as_bool();
    if (const JsonValue* m = v->find("max_iterations")) {
      s.prune.max_iterations = static_cast<int>(m->as_int());
    }
    // Eigensolver acceleration for the cut finder's spectral stage
    // (DESIGN.md §10).  A typo'd mode name fails here, at parse time,
    // with the valid names listed.
    if (const JsonValue* m = v->find("spectral_mode")) {
      s.prune.finder.spectral_mode = spectral_mode_from_string(m->as_string());
    }
    if (const JsonValue* d = v->find("filter_degree")) {
      const auto degree = static_cast<int>(d->as_int());
      FNE_REQUIRE(degree >= 0, "campaign: prune.filter_degree must be >= 0");
      s.prune.finder.filter_degree = degree;
    }
  }
  if (const JsonValue* v = obj.find("metrics")) {
    check_keys(*v, "metrics",
               {"fragmentation", "expansion", "verify_trace", "bracket_exact_limit",
                "requests"});
    if (const JsonValue* f = v->find("fragmentation")) s.metrics.fragmentation = f->as_bool();
    if (const JsonValue* e = v->find("expansion")) s.metrics.expansion = e->as_bool();
    if (const JsonValue* t = v->find("verify_trace")) s.metrics.verify_trace = t->as_bool();
    if (const JsonValue* b = v->find("bracket_exact_limit")) {
      s.metrics.bracket_exact_limit = static_cast<vid>(b->as_int());
    }
    if (const JsonValue* r = v->find("requests")) {
      // Registered-metric requests replace the preset's list wholesale
      // (like a topology name change: a partial merge of two metric
      // lists has no sensible semantics).  Unknown metric names and
      // undeclared params fail here, at parse time, with the registered
      // alternatives listed — same hygiene as every other unknown key.
      s.metrics.requests.clear();
      for (const JsonValue& item : r->items()) {
        check_keys(item, "metrics.requests entry", {"name", "params"});
        MetricRequest request;
        request.name = item.at("name").as_string();
        if (const JsonValue* p = item.find("params")) {
          request.params =
              params_from_json(*p, "metrics.requests." + request.name + ".params");
        }
        MetricsRegistry::instance().check(request.name, request.params);
        for (const MetricRequest& prev : s.metrics.requests) {
          FNE_REQUIRE(prev.name != request.name,
                      "campaign: metrics.requests lists '" + request.name +
                          "' twice (records are keyed by name)");
        }
        s.metrics.requests.push_back(std::move(request));
      }
    }
  }
}

[[nodiscard]] std::optional<SweepSpec> sweep_from_json(const JsonValue& obj) {
  const JsonValue* v = obj.find("sweep");
  if (v == nullptr) return std::nullopt;
  check_keys(*v, "sweep", {"param", "values", "mode"});
  SweepSpec sweep;
  sweep.param = v->at("param").as_string();
  for (const JsonValue& value : v->at("values").items()) {
    sweep.values.push_back(value.as_number());
  }
  FNE_REQUIRE(!sweep.values.empty(), "campaign: sweep.values must be non-empty");
  if (const JsonValue* mode = v->find("mode")) {
    const std::string& m = mode->as_string();
    FNE_REQUIRE(m == "independent" || m == "monotone",
                "campaign: sweep.mode must be independent or monotone");
    sweep.mode = m == "monotone" ? SweepMode::kMonotone : SweepMode::kIndependent;
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// Report serialization
// ---------------------------------------------------------------------------

void put_engine_stats(JsonObject& obj, const EngineStats& st) {
  obj.put("runs", st.runs)
      .put("iterations", st.iterations)
      .put("eigensolves", st.eigensolves)
      .put("stale_sweeps", st.stale_sweeps)
      .put("stale_sweep_hits", st.stale_sweep_hits)
      .put("disconnected_culls", st.disconnected_culls)
      .put("relabel_bfs_calls", st.relabel_bfs_calls)
      .put("relabel_bfs_vertices", st.relabel_bfs_vertices);
}

[[nodiscard]] std::string run_record_json(const ScenarioRun& run, const MetricsSpec& metrics,
                                          bool include_timing) {
  JsonObject obj;
  obj.put("rep", run.repetition)
      .put("fault_seed", run.fault_seed)
      .put("finder_seed", run.finder_seed)
      .put("faults", static_cast<std::uint64_t>(run.faults))
      .put("alive", static_cast<std::uint64_t>(run.alive.count()))
      .put("survivors", static_cast<std::uint64_t>(run.prune.survivors.count()))
      .put("survivor_hash", mask_hash(run.prune.survivors))
      .put("culled", static_cast<std::uint64_t>(run.prune.total_culled))
      .put("iterations", run.prune.iterations);
  if (metrics.fragmentation) {
    obj.put("gamma", run.fragmentation.gamma)
        .put("components", static_cast<std::uint64_t>(run.fragmentation.num_components));
  }
  if (run.expansion.has_value()) {
    obj.put("expansion_lower", run.expansion->lower)
        .put("expansion_upper", run.expansion->upper);
  }
  if (run.trace.has_value()) obj.put("trace_valid", run.trace->valid);
  if (!run.metrics.empty()) {
    // Registered-metric payloads are deterministic by the MetricsRegistry
    // contract, so they belong to the thread-count-independent payload.
    JsonObject metrics_obj;
    for (const MetricRecord& m : run.metrics) metrics_obj.put_json(m.name, m.payload);
    obj.put_json("metrics", metrics_obj.dump());
  }
  if (include_timing) obj.put("millis", run.millis);
  return obj.dump();
}

[[nodiscard]] std::string scenario_report_json(const ScenarioReport& report,
                                               bool include_timing) {
  JsonObject obj;
  const Scenario& s = report.scenario;
  obj.put("name", s.name)
      .put("topology", s.topology.name)
      .put("topo_params", s.topology.params.to_string())
      .put("fault", s.fault.name)
      .put("fault_params", s.fault.params.to_string())
      .put("kind", s.prune.kind == ExpansionKind::Node ? "node" : "edge")
      .put("fast", s.prune.fast)
      .put("n", static_cast<std::uint64_t>(report.n))
      .put("alpha", report.alpha)
      .put("epsilon", report.epsilon)
      .put("seed", s.seed)
      .put("repetitions", s.repetitions);
  if (!s.metrics.requests.empty()) {
    std::string requested;
    for (const MetricRequest& r : s.metrics.requests) {
      if (!requested.empty()) requested += ";";
      requested += r.name;
      if (!r.params.empty()) requested += "[" + r.params.to_string() + "]";
    }
    obj.put("metrics_requested", requested);
  }
  if (report.sweep.has_value()) {
    obj.put("sweep_param", report.sweep->param)
        .put("sweep_mode",
             report.sweep->mode == SweepMode::kMonotone ? "monotone" : "independent")
        .put_numbers("sweep_values", report.sweep->values);
  }
  std::string runs = "[";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    if (i > 0) runs += ", ";
    runs += run_record_json(report.runs[i], s.metrics, include_timing);
  }
  obj.put_json("runs", runs + "]");
  JsonObject engine;
  put_engine_stats(engine, report.engine);
  obj.put_json("engine", engine.dump());
  if (include_timing) obj.put("millis", report.millis);
  return obj.dump();
}

}  // namespace

namespace {

[[nodiscard]] Campaign campaign_from_doc(const JsonValue& doc) {
  check_keys(doc, "campaign", {"name", "scenarios"});
  Campaign campaign;
  if (const JsonValue* name = doc.find("name")) campaign.name = name->as_string();
  const JsonValue& entries = doc.at("scenarios");
  FNE_REQUIRE(!entries.items().empty(), "campaign: scenarios must be non-empty");
  for (const JsonValue& entry : entries.items()) {
    CampaignEntry e;
    if (const JsonValue* preset = entry.find("preset")) {
      e.scenario = named_scenario(preset->as_string());
    }
    apply_scenario_json(e.scenario, entry);
    e.sweep = sweep_from_json(entry);
    campaign.entries.push_back(std::move(e));
  }
  return campaign;
}

}  // namespace

Campaign campaign_from_json(const std::string& text) {
  return campaign_from_doc(JsonValue::parse(text));
}

Campaign campaign_from_file(const std::string& path) {
  Campaign campaign = campaign_from_doc(JsonValue::parse_file(path));
  if (campaign.name == "campaign") campaign.name = path;  // unnamed files report their path
  return campaign;
}

Campaign catalog_campaign(int repetitions) {
  FNE_REQUIRE(repetitions >= 1, "catalog campaign needs >= 1 repetition");
  Campaign campaign;
  campaign.name = "catalog";
  for (Scenario s : scenario_catalog()) {
    s.repetitions = repetitions;
    campaign.entries.push_back({std::move(s), std::nullopt});
  }
  return campaign;
}

EngineStats CampaignReport::total_engine_stats() const {
  EngineStats total;
  for (const ScenarioReport& s : scenarios) total += s.engine;
  return total;
}

std::string CampaignReport::to_json(bool include_timing) const {
  JsonObject top;
  top.put("name", name).put("kind", "campaign_report");
  std::string entries = "[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i > 0) entries += ", ";
    entries += scenario_report_json(scenarios[i], include_timing);
  }
  top.put_json("scenarios", entries + "]");
  JsonObject engine;
  put_engine_stats(engine, total_engine_stats());
  top.put_json("engine_total", engine.dump());
  if (include_timing) {
    top.put("threads", threads).put("millis", millis);
    JsonObject cache_obj;
    cache_obj.put("leases", cache.leases)
        .put("engine_hits", cache.engine_hits)
        .put("engine_builds", cache.engine_builds)
        .put("graph_hits", cache.graph_hits)
        .put("graph_builds", cache.graph_builds);
    top.put_json("cache", cache_obj.dump());
    if (store_enabled) {
      // The hit/miss split depends on store state, not on the campaign —
      // timing payload only, like the cache counters above.
      JsonObject store_obj;
      store_obj.put("hits", store.hits)
          .put("misses", store.misses)
          .put("bytes_loaded", store.bytes_loaded)
          .put("bytes_committed", store.bytes_committed);
      top.put_json("store", store_obj.dump());
    }
  }
  return top.dump();
}

// ---------------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------------

CampaignRunner::CampaignRunner(Campaign campaign) : campaign_(std::move(campaign)) {
  FNE_REQUIRE(!campaign_.entries.empty(), "campaign needs >= 1 entry");
  for (const CampaignEntry& e : campaign_.entries) {
    // Validate names eagerly so a typo fails at construction, not after
    // half the campaign ran.
    (void)TopologyRegistry::instance().at(e.scenario.topology.name);
    (void)FaultModelRegistry::instance().at(e.scenario.fault.name);
    const auto& requests = e.scenario.metrics.requests;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      MetricsRegistry::instance().check(requests[i].name, requests[i].params);
      for (std::size_t j = 0; j < i; ++j) {
        FNE_REQUIRE(requests[j].name != requests[i].name,
                    "campaign entry '" + e.scenario.name + "': metric '" + requests[i].name +
                        "' requested twice (records are keyed by name)");
      }
    }
    if (e.sweep.has_value()) {
      FNE_REQUIRE(!e.sweep->values.empty(),
                  "campaign entry '" + e.scenario.name + "': sweep needs values");
    }
  }
}

CampaignReport CampaignRunner::run(int threads) { return run(threads, nullptr); }

CampaignReport CampaignRunner::run(int threads, ResultStore* store) {
  FNE_REQUIRE(threads >= 1, "campaign threads must be >= 1");
  const EngineCacheStats cache_before = EngineCache::instance().stats();
  Timer wall;

  // Phase 1 — resolve every entry: graph build (cache-shared) and α/ε
  // measurement, parallelized across entries.  Runner construction is a
  // pure function of the Scenario, so placement cannot change a bit.
  const std::size_t num_entries = campaign_.entries.size();
  std::vector<std::unique_ptr<ScenarioRunner>> runners(num_entries);
  ExecutorPool::run(num_entries, threads, [&](std::size_t e) {
    runners[e] = std::make_unique<ScenarioRunner>(campaign_.entries[e].scenario);
  });

  // Phase 2 — flatten scenario×repetition / sweep jobs into one global
  // list.  A monotone sweep chain is ONE serial job (its points are
  // order-dependent); everything else is one job per run.  A job is also
  // the unit of STORAGE: one job, one content key, one record.
  struct Job {
    std::size_t entry;
    int rep = 0;          // repetition id (independent runs)
    int sweep_point = -1; // >= 0: independent sweep point index
    bool monotone = false;
    std::string key;      // content key (store mode only)
  };
  std::vector<Job> jobs;
  std::vector<std::vector<ScenarioRun>> results(num_entries);
  for (std::size_t e = 0; e < num_entries; ++e) {
    const CampaignEntry& entry = campaign_.entries[e];
    if (entry.sweep.has_value()) {
      if (entry.sweep->mode == SweepMode::kMonotone) {
        results[e].resize(0);
        jobs.push_back({e, 0, -1, true, {}});
      } else {
        results[e].resize(entry.sweep->values.size());
        for (std::size_t j = 0; j < entry.sweep->values.size(); ++j) {
          jobs.push_back({e, 0, static_cast<int>(j), false, {}});
        }
      }
    } else {
      results[e].resize(static_cast<std::size_t>(entry.scenario.repetitions));
      for (int r = 0; r < entry.scenario.repetitions; ++r) {
        jobs.push_back({e, r, -1, false, {}});
      }
    }
  }

  // Store partition: serve every already-committed job from disk and
  // keep only the misses for the pool.  A record that fails to decode or
  // has the wrong run count degrades to a miss — recompute, never crash.
  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  std::uint64_t hits = 0;
  StoreStats store_before;
  if (store != nullptr) {
    store->refresh();  // pick up cells committed by other processes
    store_before = store->stats();
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Job& job = jobs[i];
    if (store == nullptr) {
      pending.push_back(i);
      continue;
    }
    const CampaignEntry& entry = campaign_.entries[job.entry];
    if (job.sweep_point >= 0) {
      FaultSpec fault = entry.scenario.fault;
      fault.params.set(entry.sweep->param,
                       entry.sweep->values[static_cast<std::size_t>(job.sweep_point)]);
      job.key = store_cell_key(entry.scenario, fault, 0);
    } else {
      job.key = store_cell_key(entry.scenario, entry.scenario.fault, job.rep,
                               job.monotone ? &*entry.sweep : nullptr);
    }
    bool hit = false;
    if (const std::optional<std::string> payload = store->load(job.key)) {
      if (std::optional<std::vector<ScenarioRun>> runs = decode_runs(*payload)) {
        const std::size_t expected = job.monotone ? entry.sweep->values.size() : 1;
        if (runs->size() == expected) {
          if (job.monotone) {
            results[job.entry] = std::move(*runs);
          } else if (job.sweep_point >= 0) {
            results[job.entry][static_cast<std::size_t>(job.sweep_point)] =
                std::move(runs->front());
          } else {
            results[job.entry][static_cast<std::size_t>(job.rep)] =
                std::move(runs->front());
          }
          hit = true;
        }
      }
    }
    if (hit) {
      ++hits;
    } else {
      pending.push_back(i);
    }
  }

  ExecutorPool::run(pending.size(), threads, [&](std::size_t p) {
    const Job& job = jobs[pending[p]];
    const CampaignEntry& entry = campaign_.entries[job.entry];
    ScenarioRunner& runner = *runners[job.entry];
    if (job.monotone) {
      results[job.entry] = runner.sweep_fault_param(
          entry.sweep->param, entry.sweep->values, 1, SweepMode::kMonotone);
    } else if (job.sweep_point >= 0) {
      FaultSpec fault = entry.scenario.fault;
      fault.params.set(entry.sweep->param,
                       entry.sweep->values[static_cast<std::size_t>(job.sweep_point)]);
      results[job.entry][static_cast<std::size_t>(job.sweep_point)] =
          runner.run_isolated(fault, 0);
    } else {
      results[job.entry][static_cast<std::size_t>(job.rep)] =
          runner.run_isolated(entry.scenario.fault, job.rep);
    }
    if (store != nullptr) {
      // Commit as soon as the cell is done (the store is internally
      // synchronized), so a killed campaign keeps every finished cell.
      const std::vector<ScenarioRun>& entry_runs = results[job.entry];
      if (job.monotone) {
        store->put(job.key, encode_runs(entry_runs));
      } else {
        const std::size_t idx = job.sweep_point >= 0
                                    ? static_cast<std::size_t>(job.sweep_point)
                                    : static_cast<std::size_t>(job.rep);
        store->put(job.key, encode_runs({&entry_runs[idx], 1}));
      }
    }
  });

  // Phase 3 — aggregate.  Per-entry engine stats fold from the runs
  // themselves (run.engine is the delta around each engine.run call):
  // placement-independent like runner totals, but ALSO reproducible from
  // stored records — a fully store-served entry reports the same stats
  // as a computed one, keeping the deterministic payload byte-identical.
  CampaignReport report;
  report.name = campaign_.name;
  report.threads = threads;
  report.scenarios.reserve(num_entries);
  for (std::size_t e = 0; e < num_entries; ++e) {
    ScenarioReport sr;
    sr.scenario = runners[e]->scenario();
    sr.sweep = campaign_.entries[e].sweep;
    sr.alpha = runners[e]->alpha();
    sr.epsilon = runners[e]->epsilon();
    sr.n = runners[e]->graph().num_vertices();
    sr.runs = std::move(results[e]);
    for (const ScenarioRun& r : sr.runs) {
      sr.engine += r.engine;
      sr.millis += r.millis;
    }
    report.scenarios.push_back(std::move(sr));
  }
  report.millis = wall.millis();
  report.cache = EngineCache::instance().stats() - cache_before;
  if (store != nullptr) {
    const StoreStats store_after = store->stats();
    report.store_enabled = true;
    report.store.hits = hits;
    report.store.misses = pending.size();
    report.store.bytes_loaded = store_after.bytes_loaded - store_before.bytes_loaded;
    report.store.bytes_committed =
        store_after.bytes_committed - store_before.bytes_committed;
  }
  return report;
}

}  // namespace fne
