// fne::MetricsRegistry — named, param-validated analysis metrics over a
// completed prune run (DESIGN.md §9).
//
// PRs 2–4 put topologies and fault models behind string-keyed registries
// so a Scenario is fully describable as flat data; the ANALYSES stayed
// hard-coded as MetricsSpec bools, and the paper's headline measurements
// beyond raw pruning — mesh span (E6), the span conjecture (E8), the
// embedding/certificate uses — lived in hand-rolled bench loops.  This
// registry is the same seam for analyses:
//
//   MetricsRegistry: name × MetricContext × Params -> MetricRecord
//
// A MetricRecord's payload is a flat JSON object computed only from the
// deterministic parts of the run (survivors, masks, the scenario value,
// a derived seed), so campaign reports splice it into the deterministic
// payload byte-identically for any thread count and any cache state.
// Contracts mirror the other registries: declared params only (typos
// fail loudly with the declared keys listed), unknown metric names fail
// naming the registered ones, REQUIRE-style errors for config mistakes
// (e.g. mesh_span on a topology without mesh structure).  Data-dependent
// degeneracies (an empty or shattered survivor set) are NOT errors: the
// payload carries "defined": false instead, so one collapsed repetition
// cannot abort a campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/params.hpp"
#include "api/registry.hpp"  // ParamSpec
#include "api/scenario.hpp"
#include "core/graph.hpp"

namespace fne {

struct ScenarioRun;  // api/runner.hpp

/// Everything a metric may read.  All fields are deterministic functions
/// of (scenario, repetition): the seed is derived per (scenario.seed,
/// request index, repetition) by the runner, never from placement.
struct MetricContext {
  const Graph& graph;        ///< fault-free topology
  const Scenario& scenario;  ///< as resolved (topology/fault/prune specs)
  const ScenarioRun& run;    ///< completed repetition (prune result, alive mask)
  double alpha = 0.0;
  double epsilon = 0.0;
  std::uint64_t seed = 0;
};

struct MetricEntry {
  std::string name;
  std::string doc;
  std::vector<ParamSpec> params;
  std::function<MetricRecord(const MetricContext&, const Params&)> compute;
  /// Optional value-level validation (beyond the declared-keys check),
  /// run by check() and compute().  Lets a campaign file with e.g.
  /// spectral_mode=typo fail at parse time, not mid-batch.
  std::function<void(const Params&)> validate;
  /// Expensive metrics declare split_job: the campaign/dist schedulers
  /// compute them as their OWN jobs keyed (entry, rep, request) instead
  /// of inline in the run's job, so stragglers shrink and a retry re-does
  /// one metric, not the whole prune.  Purity requirement is unchanged —
  /// the record is a function of (run, request, derived seed) only.
  bool split_job = false;
};

class MetricsRegistry {
 public:
  /// The process-wide registry, with all builtin metrics registered.
  [[nodiscard]] static MetricsRegistry& instance();

  void add(MetricEntry entry);
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const MetricEntry& at(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validate `params` against the entry's declaration without computing
  /// — the campaign parser's eager typo check.
  void check(const std::string& name, const Params& params) const;

  /// Validate and compute.  The record's name is always the registry key.
  [[nodiscard]] MetricRecord compute(const std::string& name, const MetricContext& ctx,
                                     const Params& params) const;

 private:
  MetricsRegistry();
  std::map<std::string, MetricEntry> entries_;
};

}  // namespace fne
