#include "api/scenario_cli.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "api/metrics.hpp"
#include "spectral/lanczos.hpp"
#include "util/require.hpp"

namespace fne {

Scenario scenario_overrides_from_cli(Scenario base, const Cli& cli) {
  // Parsed keys merge into the preset's params, except when the
  // topology/fault *name* changes — the preset's params belong to the
  // old factory.
  const auto merge = [](Params& into, const std::string& spec) {
    const Params parsed = Params::parse(spec);
    for (const auto& [k, v] : parsed.values()) into.set(k, v);
  };
  if (cli.has("topology") && cli.get("topology", "") != base.topology.name) {
    base.topology = {cli.get("topology", ""), Params{}};
  }
  if (cli.has("topo-params")) merge(base.topology.params, cli.get("topo-params", ""));
  if (cli.has("fault") && cli.get("fault", "") != base.fault.name) {
    base.fault = {cli.get("fault", ""), Params{}};
  }
  if (cli.has("fault-params")) merge(base.fault.params, cli.get("fault-params", ""));
  if (cli.has("kind")) {
    const std::string kind = cli.get("kind", "edge");
    FNE_REQUIRE(kind == "node" || kind == "edge", "--kind must be node or edge");
    base.prune.kind = kind == "node" ? ExpansionKind::Node : ExpansionKind::Edge;
  }
  base.prune.alpha = cli.get_double("alpha", base.prune.alpha);
  base.prune.epsilon = cli.get_double("eps", base.prune.epsilon);
  base.prune.fast = cli.has("fast") || base.prune.fast;
  // Eigensolver acceleration (DESIGN.md §10): applied to the prune
  // engine's spectral stage, and below to every requested metric that
  // declares the knob, so one flag steers the whole run.
  const bool has_spectral_mode = cli.has("spectral-mode");
  const bool has_filter_degree = cli.has("filter-degree");
  if (has_spectral_mode) {
    base.prune.finder.spectral_mode = spectral_mode_from_string(cli.get("spectral-mode", ""));
  }
  if (has_filter_degree) {
    const auto degree = static_cast<int>(cli.get_int("filter-degree", 0));
    FNE_REQUIRE(degree >= 0, "--filter-degree must be >= 0");
    base.prune.finder.filter_degree = degree;
  }
  base.metrics.verify_trace = cli.has("verify") || base.metrics.verify_trace;
  base.metrics.expansion = cli.has("expansion") || base.metrics.expansion;
  if (cli.has("metrics")) {
    // --metrics=mesh_span,embedding_quality: registered metrics at their
    // default params (campaign files carry per-request params).  The list
    // replaces the preset's requests, like a topology name change.
    base.metrics.requests.clear();
    std::stringstream list(cli.get("metrics", ""));
    std::string name;
    while (std::getline(list, name, ',')) {
      if (name.empty()) continue;
      MetricsRegistry::instance().check(name, Params{});
      base.metrics.requests.push_back({name, Params{}});
    }
    FNE_REQUIRE(!base.metrics.requests.empty(), "--metrics needs at least one metric name");
  }
  if (has_spectral_mode || has_filter_degree) {
    for (MetricRequest& request : base.metrics.requests) {
      const MetricEntry& entry = MetricsRegistry::instance().at(request.name);
      const bool declares = std::any_of(entry.params.begin(), entry.params.end(),
                                        [](const ParamSpec& p) { return p.key == "spectral_mode"; });
      if (!declares) continue;
      if (has_spectral_mode) request.params.set("spectral_mode", cli.get("spectral-mode", ""));
      if (has_filter_degree) {
        request.params.set("filter_degree", cli.get_int("filter-degree", 0));
      }
      MetricsRegistry::instance().check(request.name, request.params);
    }
  }
  base.repetitions = static_cast<int>(cli.get_int("reps", base.repetitions));
  base.seed = cli.get_seed(base.seed);
  return base;
}

Scenario scenario_from_cli(const Cli& cli) {
  Scenario scenario;
  if (cli.has("scenario")) {
    scenario = named_scenario(cli.get("scenario", ""));
  } else {
    scenario.name = "ad-hoc";
  }
  return scenario_overrides_from_cli(std::move(scenario), cli);
}

}  // namespace fne
