#include "api/registry.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>

#include "core/csr_file.hpp"
#include "faults/adversary.hpp"
#include "faults/fault_model.hpp"
#include "topology/butterfly.hpp"
#include "topology/can_overlay.hpp"
#include "topology/chain_expander.hpp"
#include "topology/classic.hpp"
#include "topology/debruijn.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh.hpp"
#include "topology/multibutterfly.hpp"
#include "topology/random_graphs.hpp"
#include "topology/shuffle_exchange.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

/// Uniform declared-params check: every supplied key must be declared.
template <typename Entry>
void check_declared(const char* registry_kind, const Entry& entry, const Params& params) {
  for (const auto& [key, value] : params.values()) {
    const bool known = std::any_of(entry.params.begin(), entry.params.end(),
                                   [&](const ParamSpec& s) { return s.key == key; });
    if (!known) {
      std::string declared;
      for (const ParamSpec& s : entry.params) {
        if (!declared.empty()) declared += ", ";
        declared += s.key;
      }
      FNE_REQUIRE(false, std::string(registry_kind) + " '" + entry.name +
                             "' has no param '" + key + "' (declared: " +
                             (declared.empty() ? "none" : declared) + ")");
    }
  }
}

[[nodiscard]] vid require_vid(const std::string& who, const Params& p, const std::string& key,
                              std::int64_t fallback, std::int64_t lo, std::int64_t hi) {
  const std::int64_t v = p.get_int(key, fallback);
  FNE_REQUIRE(v >= lo && v <= hi, who + ": " + key + "=" + std::to_string(v) +
                                      " out of range [" + std::to_string(lo) + ", " +
                                      std::to_string(hi) + "]");
  return static_cast<vid>(v);
}

[[nodiscard]] double require_prob(const std::string& who, const Params& p,
                                  const std::string& key, double fallback) {
  const double v = p.get_double(key, fallback);
  FNE_REQUIRE(v >= 0.0 && v <= 1.0,
              who + ": " + key + "=" + std::to_string(v) + " must lie in [0, 1]");
  return v;
}

/// 64-bit checked conversion for vertex counts derived from params: the
/// contract must fail loudly on overflow, not compare wrapped numbers.
[[nodiscard]] vid checked_n(const std::string& who, std::uint64_t n) {
  FNE_REQUIRE(n < (std::uint64_t{1} << 31),
              who + ": " + std::to_string(n) + " vertices exceed the 32-bit id space");
  return static_cast<vid>(n);
}

/// The `file` topology's required path param.  Commas are rejected
/// because Params::to_string() — the cache/store key serialization — is
/// comma-separated (DESIGN.md §14).
[[nodiscard]] std::string file_topology_path(const Params& p) {
  const std::string path = p.get_str("path", "");
  FNE_REQUIRE(!path.empty(), "topology 'file': param 'path' is required");
  FNE_REQUIRE(path.find(',') == std::string::npos,
              "topology 'file': path may not contain ',' (reserved by the key codec)");
  return path;
}

[[nodiscard]] CsrFile::Load file_topology_mode(const Params& p) {
  return p.get_bool("mmap", true) ? CsrFile::Load::kAuto : CsrFile::Load::kBuffer;
}

/// One validated image per .csr path, serving the `file` topology's
/// expected_n, cache_salt, AND build.  Deriving all three from the same
/// bytes is what makes the content salt sound: with separate opens (a
/// header read for the salt, a full open for the graph), a file replaced
/// between the two gets its NEW graph cached under the OLD checksum —
/// a salt that no longer fingerprints what it claims to.
///
/// refresh() is the only entry point that looks at the filesystem: it
/// probes the 40-byte header and reopens the image only when the stored
/// checksum disagrees, so a rewritten file is picked up at the next key
/// computation.  build consumes pinned() verbatim — even if the file
/// changes between key and build, the graph matches the key's salt, and
/// the next refresh() serves the new content under its new salt.
///
/// Images stay pinned (one per distinct path; mmap-backed by default, so
/// the pages are reclaimable file cache, not anonymous memory).
class FileImageCache {
 public:
  static FileImageCache& instance() {
    static FileImageCache cache;
    return cache;
  }

  /// The pinned image for `path`, reopened first if the on-disk header
  /// checksum no longer matches.  Throws CsrFile::open's clean error on
  /// a missing or malformed file.
  [[nodiscard]] std::shared_ptr<const CsrFile> refresh(const std::string& path,
                                                       CsrFile::Load mode) {
    // The probe is advisory — it only decides whether to reopen.  The
    // salt callers read comes from the stored image itself, never from
    // this header read, so a file swapped mid-probe costs one extra
    // reopen, not a mismatched key.
    std::optional<std::uint64_t> probe;
    try {
      probe = CsrFile::read_header(path).checksum;
    } catch (const PreconditionError&) {
      // Unreadable or malformed right now: fall through to the full
      // open, which reports the authoritative error (or succeeds if the
      // file was mid-replacement).
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = entries_.find(path);
      if (it != entries_.end() && probe.has_value() &&
          it->second->header().checksum == *probe) {
        return it->second;
      }
    }
    // Open and validate OUTSIDE the lock (validation walks the whole
    // payload); on a concurrent refresh the last writer wins.
    auto image = std::make_shared<const CsrFile>(CsrFile::open(path, mode));
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_[path] = image;
    return image;
  }

  /// The image the most recent refresh() pinned, or nullptr.  No
  /// filesystem access: the build path must decode exactly the bytes the
  /// key's salt fingerprinted, not whatever the file holds by now.
  [[nodiscard]] std::shared_ptr<const CsrFile> pinned(const std::string& path) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(path);
    return it != entries_.end() ? it->second : nullptr;
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const CsrFile>> entries_;
};

[[nodiscard]] vid pow_n(const std::string& who, vid base, vid exp) {
  std::uint64_t n = 1;
  for (vid i = 0; i < exp; ++i) {
    n *= base;
    (void)checked_n(who, n);
  }
  return checked_n(who, n);
}

/// Shared budget resolution for the adversarial fault models: an absolute
/// `budget` wins; otherwise `frac` of n (default 10%).
[[nodiscard]] vid resolve_budget(const std::string& who, const Graph& g, const Params& p) {
  if (p.has("budget")) {
    return require_vid(who, p, "budget", 0, 0, g.num_vertices());
  }
  const double frac = require_prob(who, p, "frac", 0.1);
  return static_cast<vid>(frac * static_cast<double>(g.num_vertices()));
}

const std::vector<ParamSpec> kBudgetParams = {
    {"budget", "", "absolute fault budget (overrides frac)"},
    {"frac", "0.1", "fault budget as a fraction of n"},
};

}  // namespace

// ---------------------------------------------------------------------------
// TopologyRegistry
// ---------------------------------------------------------------------------

TopologyRegistry& TopologyRegistry::instance() {
  static TopologyRegistry registry;
  return registry;
}

void TopologyRegistry::add(TopologyEntry entry) {
  FNE_REQUIRE(!entry.name.empty(), "topology entry needs a name");
  FNE_REQUIRE(static_cast<bool>(entry.build), "topology '" + entry.name + "' needs a factory");
  FNE_REQUIRE(static_cast<bool>(entry.expected_n),
              "topology '" + entry.name + "' needs a vertex-count contract");
  entries_[entry.name] = std::move(entry);
}

bool TopologyRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

const TopologyEntry& TopologyRegistry::at(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [n, e] : entries_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    FNE_REQUIRE(false, "unknown topology '" + name + "' (registered: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> TopologyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

vid TopologyRegistry::expected_n(const std::string& name, const Params& params) const {
  const TopologyEntry& entry = at(name);
  check_declared("topology", entry, params);
  return entry.expected_n(params);
}

Params TopologyRegistry::structure(const std::string& name, const Params& params) const {
  const TopologyEntry& entry = at(name);
  check_declared("topology", entry, params);
  return entry.structure ? entry.structure(params) : Params{};
}

Mesh mesh_for(const std::string& name, const Params& params) {
  const Params s = TopologyRegistry::instance().structure(name, params);
  FNE_REQUIRE(s.has("side") && s.has("dims"),
              "topology '" + name + "' declares no mesh structure (side/dims)");
  // Structure metadata is produced by entry code, but add()-registered
  // entries are not audited: route through the same range check the
  // factories use so a negative side/dims fails loudly instead of
  // wrapping to a huge unsigned extent.
  const std::string who = "topology '" + name + "' structure";
  const vid side = require_vid(who, s, "side", 0, 1, 1 << 20);
  const vid dims = require_vid(who, s, "dims", 0, 1, 10);
  return Mesh::cube(side, dims, s.get_bool("wrap", false));
}

std::string topology_cache_salt(const std::string& name, const Params& params) {
  const TopologyEntry& entry = TopologyRegistry::instance().at(name);
  return entry.cache_salt ? entry.cache_salt(params) : std::string();
}

Graph TopologyRegistry::build(const std::string& name, const Params& params,
                              std::uint64_t seed) const {
  const TopologyEntry& entry = at(name);
  check_declared("topology", entry, params);
  const vid want = entry.expected_n(params);
  Graph g = entry.build(params, seed);
  FNE_REQUIRE(g.num_vertices() == want,
              "topology '" + name + "' violated its vertex-count contract: built " +
                  std::to_string(g.num_vertices()) + ", declared " + std::to_string(want));
  return g;
}

TopologyRegistry::TopologyRegistry() {
  // Deterministic families.  Contracts mirror the header docs: the
  // 2^dims-vertex families (hypercube/debruijn/shuffle_exchange) and the
  // side^dims meshes make the previously implicit size explicit.
  // Mesh-family structure: the facts Mesh(sides, wrap) needs, so
  // mesh_for() can rebuild the coordinate object from a Scenario.
  const auto mesh_structure = [](const char* who, bool wrap) {
    return [who = std::string(who), wrap](const Params& p) {
      return Params{}
          .set("side", static_cast<std::int64_t>(require_vid(who, p, "side", 24, 1, 1 << 20)))
          .set("dims", static_cast<std::int64_t>(require_vid(who, p, "dims", 2, 1, 10)))
          .set("wrap", std::string(wrap ? "1" : "0"));
    };
  };
  add({"mesh",
       "d-dimensional mesh, side^dims vertices (topology/mesh.hpp)",
       {{"side", "24", "vertices per dimension"}, {"dims", "2", "dimensions"}},
       [](const Params& p) {
         return pow_n("topology 'mesh'",
                      require_vid("topology 'mesh'", p, "side", 24, 1, 1 << 20),
                      require_vid("topology 'mesh'", p, "dims", 2, 1, 10));
       },
       [](const Params& p, std::uint64_t) {
         return Mesh::cube(require_vid("topology 'mesh'", p, "side", 24, 1, 1 << 20),
                           require_vid("topology 'mesh'", p, "dims", 2, 1, 10))
             .graph();
       },
       /*seeded=*/false, mesh_structure("topology 'mesh'", false)});
  add({"torus",
       "d-dimensional torus (periodic mesh), side^dims vertices",
       {{"side", "24", "vertices per dimension"}, {"dims", "2", "dimensions"}},
       [](const Params& p) {
         return pow_n("topology 'torus'",
                      require_vid("topology 'torus'", p, "side", 24, 1, 1 << 20),
                      require_vid("topology 'torus'", p, "dims", 2, 1, 10));
       },
       [](const Params& p, std::uint64_t) {
         return Mesh::cube(require_vid("topology 'torus'", p, "side", 24, 1, 1 << 20),
                           require_vid("topology 'torus'", p, "dims", 2, 1, 10),
                           /*wrap=*/true)
             .graph();
       },
       /*seeded=*/false, mesh_structure("topology 'torus'", true)});
  add({"hypercube",
       "d-dimensional hypercube Q_d, 2^dims vertices",
       {{"dims", "8", "dimension d"}},
       [](const Params& p) {
         return vid{1} << require_vid("topology 'hypercube'", p, "dims", 8, 1, 26);
       },
       [](const Params& p, std::uint64_t) {
         return hypercube(require_vid("topology 'hypercube'", p, "dims", 8, 1, 26));
       },
       /*seeded=*/false,
       [](const Params& p) {
         const vid d = require_vid("topology 'hypercube'", p, "dims", 8, 1, 26);
         return Params{}.set("dims", static_cast<std::int64_t>(d));
       }});
  add({"debruijn",
       "binary de Bruijn network DB(d), 2^dims vertices",
       {{"dims", "10", "dimension d"}},
       [](const Params& p) {
         return vid{1} << require_vid("topology 'debruijn'", p, "dims", 10, 2, 26);
       },
       [](const Params& p, std::uint64_t) {
         return debruijn(require_vid("topology 'debruijn'", p, "dims", 10, 2, 26));
       },
       /*seeded=*/false,
       [](const Params& p) {
         const vid d = require_vid("topology 'debruijn'", p, "dims", 10, 2, 26);
         return Params{}.set("dims", static_cast<std::int64_t>(d));
       }});
  add({"shuffle_exchange",
       "shuffle-exchange network SE(d), 2^dims vertices",
       {{"dims", "10", "dimension d"}},
       [](const Params& p) {
         return vid{1} << require_vid("topology 'shuffle_exchange'", p, "dims", 10, 2, 26);
       },
       [](const Params& p, std::uint64_t) {
         return shuffle_exchange(require_vid("topology 'shuffle_exchange'", p, "dims", 10, 2, 26));
       },
       /*seeded=*/false,
       [](const Params& p) {
         const vid d = require_vid("topology 'shuffle_exchange'", p, "dims", 10, 2, 26);
         return Params{}.set("dims", static_cast<std::int64_t>(d));
       }});
  add({"butterfly",
       "butterfly BF(d): (dims+1)*2^dims vertices unwrapped, dims*2^dims wrapped",
       {{"dims", "6", "dimension d"}, {"wrapped", "0", "identify level d with level 0"}},
       [](const Params& p) {
         const vid d = require_vid("topology 'butterfly'", p, "dims", 6, 1, 22);
         const vid levels = p.get_bool("wrapped", false) ? d : d + 1;
         return levels * (vid{1} << d);
       },
       [](const Params& p, std::uint64_t) {
         return butterfly(require_vid("topology 'butterfly'", p, "dims", 6, 1, 22),
                          p.get_bool("wrapped", false))
             .graph;
       },
       /*seeded=*/false,
       [](const Params& p) {
         const vid d = require_vid("topology 'butterfly'", p, "dims", 6, 1, 22);
         const bool wrapped = p.get_bool("wrapped", false);
         return Params{}
             .set("dims", static_cast<std::int64_t>(d))
             .set("levels", static_cast<std::int64_t>(wrapped ? d : d + 1))
             .set("rows", static_cast<std::int64_t>(vid{1} << d))
             .set("wrapped", std::string(wrapped ? "1" : "0"));
       }});
  add({"multibutterfly",
       "multibutterfly with random splitters, (dims+1)*2^dims vertices (seeded)",
       {{"dims", "6", "log2(rows)"}, {"splitter_degree", "2", "random edges per half-block"}},
       [](const Params& p) {
         const vid d = require_vid("topology 'multibutterfly'", p, "dims", 6, 1, 16);
         return (d + 1) * (vid{1} << d);
       },
       [](const Params& p, std::uint64_t seed) {
         return multibutterfly(
                    require_vid("topology 'multibutterfly'", p, "dims", 6, 1, 16),
                    require_vid("topology 'multibutterfly'", p, "splitter_degree", 2, 1, 64),
                    seed)
             .graph;
       },
       /*seeded=*/true,
       [](const Params& p) {
         const vid d = require_vid("topology 'multibutterfly'", p, "dims", 6, 1, 16);
         return Params{}
             .set("dims", static_cast<std::int64_t>(d))
             .set("levels", static_cast<std::int64_t>(d + 1))
             .set("rows", static_cast<std::int64_t>(vid{1} << d));
       }});
  add({"random_regular",
       "random d-regular simple graph (permutation model, seeded)",
       {{"n", "256", "vertices (n*degree must be even)"}, {"degree", "4", "degree"}},
       [](const Params& p) {
         return require_vid("topology 'random_regular'", p, "n", 256, 2, 1 << 26);
       },
       [](const Params& p, std::uint64_t seed) {
         const vid n = require_vid("topology 'random_regular'", p, "n", 256, 2, 1 << 26);
         const vid d = require_vid("topology 'random_regular'", p, "degree", 4, 1, 1 << 16);
         FNE_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0 && d < n,
                     "topology 'random_regular': need n*degree even and degree < n");
         return random_regular(n, d, seed);
       },
       /*seeded=*/true, /*structure=*/{}});
  add({"erdos_renyi",
       "Erdős–Rényi G(n, p) (seeded)",
       {{"n", "256", "vertices"}, {"p", "0.02", "edge probability"}},
       [](const Params& p) {
         return require_vid("topology 'erdos_renyi'", p, "n", 256, 1, 1 << 26);
       },
       [](const Params& p, std::uint64_t seed) {
         return erdos_renyi(require_vid("topology 'erdos_renyi'", p, "n", 256, 1, 1 << 26),
                            require_prob("topology 'erdos_renyi'", p, "p", 0.02), seed);
       },
       /*seeded=*/true, /*structure=*/{}});
  add({"can",
       "CAN overlay zone-adjacency graph, `peers` vertices (seeded)",
       {{"peers", "256", "number of peers/zones"},
        {"dims", "2", "torus dimensions"},
        {"max_depth", "20", "split resolution (bits per dimension)"}},
       [](const Params& p) {
         return require_vid("topology 'can'", p, "peers", 256, 1, 1 << 26);
       },
       [](const Params& p, std::uint64_t seed) {
         return can_overlay(require_vid("topology 'can'", p, "peers", 256, 1, 1 << 26),
                            require_vid("topology 'can'", p, "dims", 2, 1, 10), seed,
                            require_vid("topology 'can'", p, "max_depth", 20, 1, 30))
             .graph;
       },
       /*seeded=*/true, /*structure=*/{}});
  add({"chain_expander",
       "H(G, k): every edge of a random base expander replaced by a k-chain "
       "(seeded); base_n + k * (base_n*base_degree/2) vertices",
       {{"base_n", "32", "base expander vertices"},
        {"base_degree", "4", "base expander degree"},
        {"k", "4", "chain length (even, >= 2)"}},
       [](const Params& p) {
         const vid bn = require_vid("topology 'chain_expander'", p, "base_n", 32, 2, 1 << 16);
         const vid bd = require_vid("topology 'chain_expander'", p, "base_degree", 4, 1, 64);
         const vid k = require_vid("topology 'chain_expander'", p, "k", 4, 2, 1 << 12);
         FNE_REQUIRE(k % 2 == 0, "topology 'chain_expander': k must be even");
         // The pairing model keeps exactly base_n*base_degree/2 edges
         // (duplicates force a resample, not a smaller graph).
         const std::uint64_t edges = std::uint64_t{bn} * bd / 2;
         return checked_n("topology 'chain_expander'", bn + std::uint64_t{k} * edges);
       },
       [](const Params& p, std::uint64_t seed) {
         const vid bn = require_vid("topology 'chain_expander'", p, "base_n", 32, 2, 1 << 16);
         const vid bd = require_vid("topology 'chain_expander'", p, "base_degree", 4, 1, 64);
         const vid k = require_vid("topology 'chain_expander'", p, "k", 4, 2, 1 << 12);
         return chain_replace(random_regular(bn, bd, seed), k).graph;
       },
       /*seeded=*/true, /*structure=*/{}});
  add({"complete",
       "complete graph K_n",
       {{"n", "64", "vertices"}},
       [](const Params& p) { return require_vid("topology 'complete'", p, "n", 64, 1, 4096); },
       [](const Params& p, std::uint64_t) {
         return complete_graph(require_vid("topology 'complete'", p, "n", 64, 1, 4096));
       },
       /*seeded=*/false, /*structure=*/{}});
  add({"cycle",
       "cycle C_n",
       {{"n", "64", "vertices"}},
       [](const Params& p) { return require_vid("topology 'cycle'", p, "n", 64, 3, 1 << 26); },
       [](const Params& p, std::uint64_t) {
         return cycle_graph(require_vid("topology 'cycle'", p, "n", 64, 3, 1 << 26));
       },
       /*seeded=*/false, /*structure=*/{}});
  add({"path",
       "path P_n",
       {{"n", "64", "vertices"}},
       [](const Params& p) { return require_vid("topology 'path'", p, "n", 64, 1, 1 << 26); },
       [](const Params& p, std::uint64_t) {
         return path_graph(require_vid("topology 'path'", p, "n", 64, 1, 1 << 26));
       },
       /*seeded=*/false, /*structure=*/{}});
  add({"star",
       "star S_n (vertex 0 is the hub)",
       {{"n", "64", "vertices"}},
       [](const Params& p) { return require_vid("topology 'star'", p, "n", 64, 2, 1 << 26); },
       [](const Params& p, std::uint64_t) {
         return star_graph(require_vid("topology 'star'", p, "n", 64, 2, 1 << 26));
       },
       /*seeded=*/false, /*structure=*/{}});
  add({"barbell",
       "two K_half cliques joined by one edge, 2*half vertices (paper §1.3)",
       {{"half", "16", "clique size"}},
       [](const Params& p) {
         return 2 * require_vid("topology 'barbell'", p, "half", 16, 2, 2048);
       },
       [](const Params& p, std::uint64_t) {
         return barbell_graph(require_vid("topology 'barbell'", p, "half", 16, 2, 2048));
       },
       /*seeded=*/false, /*structure=*/{}});
  // Real graphs: a binary CSR file produced by tools/edgelist2csr
  // (DESIGN.md §14).  Deterministic by definition (seeded=false), and the
  // cache salt folds the file's content checksum into every EngineCache
  // key so re-converting a dataset in place invalidates cached graphs.
  add({"file",
       "real graph from a binary CSR file (tools/edgelist2csr, DESIGN.md §14)",
       {{"path", "", "path to the .csr file (required)"},
        {"mmap", "1", "map the payload (0: buffered read; identical results)"}},
       [](const Params& p) {
         const std::string path = file_topology_path(p);
         const auto image = FileImageCache::instance().refresh(path, file_topology_mode(p));
         return checked_n("topology 'file'", image->header().n);
       },
       [](const Params& p, std::uint64_t) {
         const std::string path = file_topology_path(p);
         // Decode the image the most recent key computation fingerprinted
         // (FileImageCache): salt and graph must come from the same
         // bytes.  A direct build with no prior key opens fresh.
         if (const auto image = FileImageCache::instance().pinned(path)) {
           return image->to_graph();
         }
         return CsrFile::open(path, file_topology_mode(p)).to_graph();
       },
       /*seeded=*/false, /*structure=*/{},
       /*cache_salt=*/
       [](const Params& p) {
         const std::string path = file_topology_path(p);
         const auto image = FileImageCache::instance().refresh(path, file_topology_mode(p));
         return path + "#" + std::to_string(image->header().checksum);
       }});
}

// ---------------------------------------------------------------------------
// FaultModelRegistry
// ---------------------------------------------------------------------------

FaultModelRegistry& FaultModelRegistry::instance() {
  static FaultModelRegistry registry;
  return registry;
}

void FaultModelRegistry::add(FaultModelEntry entry) {
  FNE_REQUIRE(!entry.name.empty(), "fault model entry needs a name");
  FNE_REQUIRE(static_cast<bool>(entry.build),
              "fault model '" + entry.name + "' needs a factory");
  entries_[entry.name] = std::move(entry);
}

bool FaultModelRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

const FaultModelEntry& FaultModelRegistry::at(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [n, e] : entries_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    FNE_REQUIRE(false, "unknown fault model '" + name + "' (registered: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> FaultModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

VertexSet FaultModelRegistry::build(const std::string& name, const Graph& g,
                                    const Params& params, std::uint64_t seed) const {
  const FaultModelEntry& entry = at(name);
  check_declared("fault model", entry, params);
  VertexSet alive = entry.build(g, params, seed);
  FNE_REQUIRE(alive.universe_size() == g.num_vertices(),
              "fault model '" + name + "' returned a mask over the wrong universe");
  return alive;
}

FaultModelRegistry::FaultModelRegistry() {
  add({"none",
       "no faults: everything alive (baseline rows)",
       {},
       [](const Graph& g, const Params&, std::uint64_t) {
         return VertexSet::full(g.num_vertices());
       },
       /*monotone_params=*/{}});
  add({"random",
       "each node fails independently with probability p (paper §3)",
       {{"p", "0.1", "per-node fault probability"}},
       [](const Graph& g, const Params& p, std::uint64_t seed) {
         return random_node_faults(g, require_prob("fault model 'random'", p, "p", 0.1), seed);
       },
       // One uniform per vertex compared against p: under a fixed seed,
       // raising p only ADDS faults, so alive(p_hi) ⊆ alive(p_lo).
       /*monotone_params=*/{"p"}});
  add({"random_exact",
       "exactly `budget` (or frac*n) uniform random node faults",
       kBudgetParams,
       [](const Graph& g, const Params& p, std::uint64_t seed) {
         return random_exact_node_faults(g, resolve_budget("fault model 'random_exact'", g, p),
                                         seed);
       },
       /*monotone_params=*/{}});
  add({"high_degree",
       "adversary fails the `budget` highest-degree vertices (hub attack)",
       kBudgetParams,
       [](const Graph& g, const Params& p, std::uint64_t) {
         const AttackResult a =
             high_degree_attack(g, resolve_budget("fault model 'high_degree'", g, p));
         return VertexSet::full(g.num_vertices()) - a.faults;
       },
       // A prefix of one stable degree order: a larger budget fails a
       // SUPERSET of the vertices, so the alive masks nest.  (random_exact
       // is NOT declared: Floyd's sampling reshuffles with the budget.)
       /*monotone_params=*/{"budget", "frac"}});
  add({"sweep_cut",
       "adversary fails node boundaries of low-expansion sweep cuts within budget",
       [] {
         std::vector<ParamSpec> ps = kBudgetParams;
         ps.push_back({"exact_limit", "14", "exhaustive cut search below this size"});
         return ps;
       }(),
       [](const Graph& g, const Params& p, std::uint64_t seed) {
         CutFinderOptions copts;
         copts.exact_limit =
             require_vid("fault model 'sweep_cut'", p, "exact_limit", 14, 0, 24);
         copts.seed = seed;
         const AttackResult a =
             sweep_cut_attack(g, resolve_budget("fault model 'sweep_cut'", g, p), copts);
         return VertexSet::full(g.num_vertices()) - a.faults;
       },
       /*monotone_params=*/{}});
  add({"separator",
       "Menger adversary: exact minimum s-t vertex separators within budget",
       kBudgetParams,
       [](const Graph& g, const Params& p, std::uint64_t seed) {
         const AttackResult a =
             separator_attack(g, resolve_budget("fault model 'separator'", g, p), seed);
         return VertexSet::full(g.num_vertices()) - a.faults;
       },
       /*monotone_params=*/{}});
  add({"bisection",
       "Theorem 2.5 adversary: recursive bisection until pieces < epsilon*n",
       {{"epsilon", "0.05", "stop when all pieces are below epsilon*n"},
        {"exact_limit", "14", "exhaustive cut search below this size"}},
       [](const Graph& g, const Params& p, std::uint64_t seed) {
         BisectionOptions opts;
         opts.epsilon = require_prob("fault model 'bisection'", p, "epsilon", 0.05);
         opts.cut_options.exact_limit =
             require_vid("fault model 'bisection'", p, "exact_limit", 14, 0, 24);
         opts.cut_options.seed = seed;
         const AttackResult a = bisection_attack(g, opts);
         return VertexSet::full(g.num_vertices()) - a.faults;
       },
       /*monotone_params=*/{}});
}

}  // namespace fne
