// The executor layer under the scenario/campaign APIs (DESIGN.md §8):
// a process-wide engine cache plus a small deterministic job pool.
//
// PR 3 gave each ScenarioRunner worker its own throwaway PruneEngine;
// every cross-scenario study (a campaign over the catalog, a parameter
// grid, the benches' family loops) therefore rebuilt graphs and engine
// workspaces from scratch per scenario.  This layer hoists that state one
// level up:
//
//   EngineCache — process-wide singleton mapping
//       (topology name, topology params, build seed, expansion kind)
//     to built Graphs (shared) and idle PruneEngines (pooled).  Engines
//     are LEASED per job: lease() pops an idle engine (or builds one),
//     calls PruneEngine::drop_warm_state() and snapshots its stats.
//     Dropping the warm state on every lease is what keeps results
//     bit-identical for any thread count and any cache-hit pattern — a
//     leased engine behaves exactly like a freshly constructed one, it
//     just skips the graph build and the workspace allocations.  Unseeded
//     topologies (mesh, hypercube, ...) normalize their build seed to 0
//     in the key, so scenarios that differ only in their fault seed share
//     one graph and one engine pool.
//
//   EngineLease — movable RAII handle returned by lease(); exposes the
//     engine, the shared graph, and stats_delta() (work accrued since the
//     lease — the placement-independent number campaign reports fold).
//     The destructor returns the engine to the idle pool.
//
//   ExecutorPool — runs fn(i) for i in [0, jobs) on a worker pool, jobs
//     claimed off an atomic counter.  Safe for any fn whose result is a
//     pure function of i (the scenario layer's determinism contract);
//     the first exception is rethrown on the caller after all workers
//     drain, so one bad job cannot strand the rest.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "api/params.hpp"
#include "core/graph.hpp"
#include "prune/engine.hpp"
#include "util/require.hpp"

namespace fne {

/// Cache-op telemetry.  These counters describe *placement* (who hit, who
/// built), so they are wall-clock-class data: campaign reports keep them
/// out of the deterministic payload.
///
/// The last three fields came with the byte budget (DESIGN.md §13):
/// `evictions` is a counter like the rest; `bytes_resident` and
/// `peak_bytes` are GAUGES — they describe the cache's current state, so
/// a snapshot difference carries the later snapshot's value unchanged.
struct EngineCacheStats {
  std::uint64_t leases = 0;
  std::uint64_t engine_hits = 0;    ///< leases served from the idle pool
  std::uint64_t engine_builds = 0;  ///< leases that constructed an engine
  std::uint64_t graph_hits = 0;
  std::uint64_t graph_builds = 0;
  std::uint64_t evictions = 0;       ///< entries destroyed by the byte budget
  std::uint64_t bytes_resident = 0;  ///< gauge: bytes the cache pins right now
  std::uint64_t peak_bytes = 0;      ///< gauge: high-water mark of bytes_resident

  [[nodiscard]] friend EngineCacheStats operator-(const EngineCacheStats& after,
                                                  const EngineCacheStats& before) {
    return {after.leases - before.leases,
            after.engine_hits - before.engine_hits,
            after.engine_builds - before.engine_builds,
            after.graph_hits - before.graph_hits,
            after.graph_builds - before.graph_builds,
            after.evictions - before.evictions,
            after.bytes_resident,
            after.peak_bytes};
  }
};

class EngineCache;

/// Movable RAII handle over one cached engine.  Default-constructed
/// leases are empty; engine()/graph() REQUIRE a held lease.
class EngineLease {
 public:
  EngineLease() = default;
  EngineLease(EngineLease&& o) noexcept;
  EngineLease& operator=(EngineLease&& o) noexcept;
  EngineLease(const EngineLease&) = delete;
  EngineLease& operator=(const EngineLease&) = delete;
  ~EngineLease();

  [[nodiscard]] explicit operator bool() const noexcept { return slot_ != nullptr; }
  [[nodiscard]] PruneEngine& engine() const;
  [[nodiscard]] const Graph& graph() const;
  /// Engine work accrued since this lease was taken.  A pure function of
  /// the jobs run on the lease — placement- and cache-history-independent.
  [[nodiscard]] EngineStats stats_delta() const;
  /// Return the engine to the cache now (also done by the destructor).
  void release();

 private:
  friend class EngineCache;
  struct Slot;
  EngineLease(EngineCache* cache, std::unique_ptr<Slot> slot) noexcept;

  EngineCache* cache_ = nullptr;
  std::unique_ptr<Slot> slot_;
};

class EngineCache {
 public:
  /// The process-wide cache (one per process, like the registries).
  [[nodiscard]] static EngineCache& instance();

  /// The graph `TopologyRegistry::build(topology, params, build_seed)`
  /// produces, built at most once per distinct key and shared.  Unseeded
  /// topologies ignore `build_seed` (normalized to 0 in the key).
  [[nodiscard]] std::shared_ptr<const Graph> graph(const std::string& topology,
                                                   const Params& params,
                                                   std::uint64_t build_seed);

  /// Lease an engine for (topology, params, build_seed, kind).  Pops an
  /// idle engine or builds one; ALWAYS drops the warm state, so the jobs
  /// run on the lease are pure functions of their inputs regardless of
  /// the engine's history.
  [[nodiscard]] EngineLease lease(const std::string& topology, const Params& params,
                                  std::uint64_t build_seed, ExpansionKind kind);

  [[nodiscard]] EngineCacheStats stats() const;
  [[nodiscard]] std::size_t idle_engines() const;
  [[nodiscard]] std::size_t cached_graphs() const;

  /// Byte budget for everything the cache pins — cached graphs plus idle
  /// pooled engines, measured by their memory_bytes().  0 (the default)
  /// means unbounded, the pre-§13 behavior.  When an insert or release
  /// pushes the resident total past the budget, unleased entries are
  /// evicted least-recently-used until it fits (or nothing evictable is
  /// left).  Setting a budget below the current residency evicts
  /// immediately.  Outstanding leases are NEVER evicted — they are owned
  /// by their lease, not the cache — so a serving process's true ceiling
  /// is budget + (concurrent leases × engine footprint).
  ///
  /// Eviction cannot change results: a leased engine always drops its
  /// warm state, so an evicted entry is indistinguishable from a cold
  /// start — the next lease just pays the rebuild (test-enforced
  /// byte-identity in tests/test_cache_budget.cpp).
  void set_budget_bytes(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t budget_bytes() const;

  /// Drop every idle engine and cached graph (stats counters survive).
  /// Outstanding leases are unaffected; their engines return to the
  /// (now empty) pool as usual.  Graphs are retained until clear(),
  /// eviction or budget pressure by design — cross-campaign reuse is the
  /// point of the cache — so a process cycling through unboundedly many
  /// DISTINCT topology keys should set a byte budget (or clear() between
  /// studies); idle engines are additionally capped per key
  /// (kMaxIdlePerKey), so engine memory is bounded by the number of
  /// distinct keys, not by past pool widths.
  void clear();

  /// Ceiling on pooled idle engines per key; releases beyond it destroy
  /// the engine instead of pooling it.
  static constexpr std::size_t kMaxIdlePerKey = 16;

 private:
  friend class EngineLease;
  using GraphKey = std::tuple<std::string, std::string, std::uint64_t>;
  using EngineKey = std::tuple<std::string, std::string, std::uint64_t, int>;

  struct GraphEntry {
    std::shared_ptr<const Graph> graph;
    std::uint64_t bytes = 0;  ///< memory_bytes() at insert (graphs are immutable)
    std::uint64_t tick = 0;   ///< LRU stamp: last hit or insert
  };
  struct IdleEngine {
    std::unique_ptr<EngineLease::Slot> slot;
    std::uint64_t bytes = 0;  ///< memory_bytes() at release (buffers grow in use)
    std::uint64_t tick = 0;   ///< LRU stamp: release time
  };

  EngineCache() = default;
  void release(std::unique_ptr<EngineLease::Slot> slot);
  [[nodiscard]] std::uint64_t normalized_seed(const std::string& topology,
                                              std::uint64_t build_seed) const;
  void add_resident_locked(std::uint64_t bytes);
  /// Evict LRU unleased entries until bytes_resident fits the budget.
  void enforce_budget_locked();

  mutable std::mutex mutex_;
  std::map<GraphKey, GraphEntry> graphs_;
  std::map<EngineKey, std::vector<IdleEngine>> idle_;
  EngineCacheStats stats_;
  std::uint64_t budget_bytes_ = 0;  ///< 0 = unbounded
  std::uint64_t tick_ = 0;          ///< LRU clock (bumped per cache op)
};

/// One engine bound to one shared graph, plus the bookkeeping the lease
/// needs to re-pool it and attribute its work.
struct EngineLease::Slot {
  EngineCache::EngineKey key;
  std::shared_ptr<const Graph> graph;
  PruneEngine engine;
  EngineStats at_lease;  ///< stats snapshot when the lease was taken

  Slot(EngineCache::EngineKey k, std::shared_ptr<const Graph> g, ExpansionKind kind)
      : key(std::move(k)), graph(std::move(g)), engine(*graph, kind) {}
};

/// Cooperative cancellation handle (DESIGN.md §13).  A requester keeps
/// one token per unit of work it may abandon (the scenario service keeps
/// one per client request) and cancel()s it when the result is no longer
/// wanted — a disconnected client, a shutdown.  Pools and runners poll
/// cancelled() between jobs: cancellation is a scheduling fence, never an
/// interrupt, so a job that already started runs to completion and the
/// purity contract is untouched.  Copies share one flag; all operations
/// are thread-safe.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept { state_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return state_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Thrown by ExecutorPool::run (and the campaign/scenario surfaces above
/// it) when a cancellation token stopped the schedule before every job
/// ran.  Derives from PreconditionError so generic catch sites treat it
/// like any other aborted run; the service catches it specifically to
/// count abandoned requests instead of reporting errors.
class CancelledError : public PreconditionError {
 public:
  using PreconditionError::PreconditionError;
};

/// Aggregated failure report thrown by ExecutorPool::run when any job
/// threw.  Derives from PreconditionError so existing catch sites keep
/// working, but carries the failure COUNT: a scheduler above the pool
/// (the distributed coordinator, a retry loop) needs to distinguish "one
/// flaky job" from "everything is failing" without parsing a message.
class ExecutorError : public PreconditionError {
 public:
  ExecutorError(std::size_t failed, std::size_t total, std::string first_message);

  [[nodiscard]] std::size_t failed_jobs() const noexcept { return failed_; }
  [[nodiscard]] std::size_t total_jobs() const noexcept { return total_; }
  [[nodiscard]] const std::string& first_message() const noexcept { return first_; }

 private:
  std::size_t failed_;
  std::size_t total_;
  std::string first_;
};

class ExecutorPool {
 public:
  /// Run fn(i) for every i in [0, jobs).  `threads` is clamped to
  /// [1, jobs]; 1 runs inline on the caller.  Workers claim indices off a
  /// shared atomic counter — dynamic placement is safe exactly when fn(i)
  /// is a pure function of i.  Jobs that throw never strand the rest:
  /// every job runs regardless, failures are counted, and one
  /// ExecutorError aggregating (failed, total, first message) is thrown
  /// after the pool drains.
  ///
  /// `cancel` (optional) is checked before every claim: once cancelled,
  /// workers stop claiming, in-flight jobs finish, and — iff any job was
  /// skipped — the pool throws CancelledError after draining (job errors
  /// win over cancellation when both happened).  A token that fires after
  /// the last claim changes nothing: the run completes normally.
  static void run(std::size_t jobs, int threads, const std::function<void(std::size_t)>& fn,
                  const CancelToken* cancel = nullptr);
};

}  // namespace fne
