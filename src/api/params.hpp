// String-keyed parameter maps for the scenario layer (DESIGN.md §6).
//
// Every registry factory — topology builders and fault models alike — is
// normalized behind the uniform signature (params, seed).  Params carries
// the per-factory knobs as strings so scenarios can be described in
// flags, config rows, or tables without per-factory structs, while the
// typed getters validate on access: a malformed or out-of-range value
// raises PreconditionError naming the offending key, never a silent
// default.  Registries additionally reject keys a factory never declared
// (see registry.hpp), so typos fail loudly too.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>

namespace fne {

class Params {
 public:
  Params() = default;
  Params(std::initializer_list<std::pair<std::string, std::string>> kvs);

  /// Parse a "key=value,key=value" spec (the CLI wire format).  Empty
  /// spec -> empty params.  A token without '=' is treated as a boolean
  /// flag ("wrap" == "wrap=1").
  [[nodiscard]] static Params parse(const std::string& spec);

  Params& set(const std::string& key, std::string value);
  Params& set(const std::string& key, std::int64_t value);
  Params& set(const std::string& key, double value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  /// Typed getters: return the fallback when the key is absent, and
  /// REQUIRE-fail (naming the key and the raw text) when the stored value
  /// does not parse as the requested type.
  [[nodiscard]] std::string get_str(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const noexcept {
    return values_;
  }

  /// "k=v,k=v" round-trip of parse(); keys in sorted order.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Params&, const Params&) = default;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fne
