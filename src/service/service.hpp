// fne::ScenarioService — the long-running scenario daemon (DESIGN.md §13).
//
// Every surface so far is batch: a process starts, runs one campaign (or
// one dist role), prints, exits — and the EngineCache dies with it.  The
// service turns the library into a resident evaluator: one process holds
// the warm cache and an executor pool, and clients submit campaigns over
// a socket, paying graph builds and workspace warm-up ONCE across
// arbitrarily many requests.
//
// Wire protocol: the §12 FNEM frames (same magic, checksum and total
// FrameBuffer decoder as the dist runtime — hostile-bytes hardening comes
// for free) carrying two new types, kRequest and kResponse, whose
// payloads are JSON text:
//
//   request   {"id": N, "type": "campaign" | "stats" | "ping" | "sleep",
//              "campaign": "<campaign JSON, embedded as a string>",
//              "threads": K, "millis": M}
//   response  {"id": N, "status": "ok" | "rejected" | "error",
//              "payload": "<result JSON, embedded as a string>",
//              "message": "...", "retry_after_ms": R}
//
// The campaign text and the result payload ride INSIDE JSON strings
// (escape/unescape round-trips every byte), so a client recovers the
// deterministic campaign payload EXACTLY as a local run would print it —
// the CI smoke job diffs service output against a local golden file
// byte for byte.  "sleep" is a test hook: it occupies a worker for M ms
// (cancellably) so the backpressure and disconnect tests can fill the
// queue deterministically.
//
// Admission control (all three rejections carry retry_after_ms):
//   * oversized — request payload over max_request_bytes, rejected at
//     the reader before parsing (a client cannot make the service parse
//     unbounded input);
//   * queue_full — the bounded request queue is at queue_depth;
//   * expired — the request waited longer than queue_deadline_ms before
//     a worker picked it up (stale work is refused, not served late).
//
// Abandonment: every queued request owns a CancelToken; a client
// disconnect cancels its session's tokens, so in-flight campaigns stop
// claiming jobs (ExecutorPool's cancellation fence) instead of burning
// workers for a reader that is gone.  stop() cancels everything, drains
// the workers and joins every thread — SIGTERM shutdown is clean by
// construction.
//
// Determinism: the service changes SCHEDULING only.  Results flow
// through the same CampaignRunner/EngineCache path as local runs, where
// lease-time drop_warm_state() and the cache's eviction-is-cold-rebuild
// contract already guarantee byte-identical deterministic payloads for
// any thread count, any cache budget and any request interleaving.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "dist/message.hpp"
#include "dist/transport.hpp"

namespace fne {

struct ServiceOptions {
  std::string bind = "127.0.0.1";
  int port = 0;              ///< 0 = ephemeral (read back via port())
  int workers = 2;           ///< concurrent campaign executions
  int exec_threads = 1;      ///< ExecutorPool threads per campaign (also the per-request cap)
  std::size_t queue_depth = 16;        ///< bounded request queue
  std::uint64_t queue_deadline_ms = 0; ///< 0 = no deadline; else max queue wait
  std::size_t max_request_bytes = 1u << 20;  ///< frame payload cap before reject
  std::uint64_t retry_after_ms = 100;  ///< backpressure hint in every reject
  std::uint64_t cache_budget_bytes = 0;  ///< applied to EngineCache at start(); 0 = leave as-is
  int poll_ms = 50;          ///< accept/recv poll granularity
};

/// Monotonic service counters (all guarded by the service mutex; stats()
/// snapshots them).  Rejections are split by cause so a load test can
/// tell backpressure from client error.
struct ServiceStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;    ///< accepted into the queue (or served inline)
  std::uint64_t completed = 0;   ///< responded with status "ok"
  std::uint64_t errors = 0;      ///< responded with status "error"
  std::uint64_t cancelled = 0;   ///< abandoned (disconnect / shutdown) before completion
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_expired = 0;
  std::uint64_t rejected_oversized = 0;
};

class ScenarioService {
 public:
  /// Binds the listener immediately (REQUIRE-fails on address errors),
  /// so port() is valid before start().
  explicit ScenarioService(ServiceOptions options);
  ~ScenarioService();
  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  [[nodiscard]] int port() const noexcept;

  /// Spawn the accept thread and `workers` executor threads; returns
  /// immediately.  Applies options.cache_budget_bytes to the process
  /// EngineCache when nonzero.
  void start();

  /// Stop accepting, cancel every queued and in-flight request, drain
  /// the workers and join every thread.  Idempotent; also run by the
  /// destructor.  After stop() the service cannot be restarted.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  /// Requests currently waiting in the bounded queue (load telemetry).
  [[nodiscard]] std::size_t queue_size() const;

 private:
  struct Session;
  struct Request;

  void accept_loop();
  void session_loop(std::shared_ptr<Session> session);
  void worker_loop();
  void handle_request(const Request& req);
  void send_response(Session& session, const std::string& json);
  void reject(Session& session, std::uint64_t id, const std::string& reason,
              std::uint64_t* counter);

  ServiceOptions options_;
  std::unique_ptr<TcpListener> listener_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  ServiceStats stats_;
  bool stopping_ = false;
  bool started_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Session>> sessions_;
};

// -- client ------------------------------------------------------------------

/// One parsed kResponse payload.
struct ServiceResponse {
  std::uint64_t id = 0;
  std::string status;   ///< "ok" | "rejected" | "error"
  std::string payload;  ///< embedded result JSON (campaign payload / stats)
  std::string message;  ///< human-readable detail (rejects and errors)
  std::uint64_t retry_after_ms = 0;

  [[nodiscard]] bool ok() const noexcept { return status == "ok"; }
  [[nodiscard]] bool rejected() const noexcept { return status == "rejected"; }
};

/// Blocking client over one connection.  Not thread-safe; one client per
/// thread (the load generator opens many).
class ServiceClient {
 public:
  /// Connect within timeout_ms; REQUIRE-fails on refusal (a missing
  /// daemon is a usage error for every caller of this class).
  ServiceClient(const std::string& host, int port, int timeout_ms = 2000);

  /// Run one campaign (text = campaign JSON).  threads <= 0 lets the
  /// service pick.  Blocks until the matching response or timeout;
  /// REQUIRE-fails on transport death / corrupt stream / timeout.
  [[nodiscard]] ServiceResponse campaign(const std::string& campaign_json, int threads = 0,
                                         int timeout_ms = 60000);
  [[nodiscard]] ServiceResponse stats(int timeout_ms = 5000);
  [[nodiscard]] ServiceResponse ping(int timeout_ms = 5000);
  /// Test hook: occupy a service worker for `millis` ms.
  [[nodiscard]] ServiceResponse sleep_for(std::uint64_t millis, int timeout_ms = 60000);

  /// Send a raw request JSON without waiting (pipelining / abandon
  /// tests).  Returns the id assigned to it.
  std::uint64_t send_only(const std::string& type, const std::string& campaign_json,
                          std::uint64_t millis);
  /// Await the response for `id` (from send_only).
  [[nodiscard]] ServiceResponse await(std::uint64_t id, int timeout_ms = 60000);

  /// Drop the connection immediately (abandonment tests).
  void disconnect();

 private:
  [[nodiscard]] ServiceResponse roundtrip(const std::string& request_json, std::uint64_t id,
                                          int timeout_ms);

  std::unique_ptr<Transport> transport_;
  FrameBuffer frames_;
  std::uint64_t next_id_ = 1;
};

/// Request/response JSON codecs (shared by service, client and tests).
[[nodiscard]] std::string make_request_json(std::uint64_t id, const std::string& type,
                                            const std::string& campaign_json, int threads,
                                            std::uint64_t millis);
[[nodiscard]] ServiceResponse parse_response_json(const std::string& text);

}  // namespace fne
