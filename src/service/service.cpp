#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "api/campaign.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ms_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0).count());
}

}  // namespace

// One connected client.  The reader thread owns recv; responses go
// through send() under the session's own mutex (a campaign worker and
// the reader's inline ping handler may respond concurrently).  alive
// flips once, on reader exit or send failure; cancel_all() is the
// abandonment fence — every queued request registered its token here.
struct ScenarioService::Session {
  std::unique_ptr<Transport> transport;
  std::mutex send_mutex;
  std::atomic<bool> alive{true};
  std::mutex token_mutex;
  std::vector<CancelToken> tokens;

  void register_token(const CancelToken& token) {
    const std::lock_guard<std::mutex> lock(token_mutex);
    tokens.push_back(token);
  }
  void cancel_all() {
    const std::lock_guard<std::mutex> lock(token_mutex);
    for (const CancelToken& t : tokens) t.cancel();
  }
};

/// One queued unit of work (campaign or sleep; ping/stats are answered
/// inline by the reader and never queue).
struct ScenarioService::Request {
  std::shared_ptr<Session> session;
  std::uint64_t id = 0;
  std::string type;
  std::string campaign;  ///< campaign JSON text (type == "campaign")
  int threads = 0;
  std::uint64_t millis = 0;  ///< sleep duration (type == "sleep")
  CancelToken token;
  Clock::time_point enqueued;
};

ScenarioService::ScenarioService(ServiceOptions options) : options_(std::move(options)) {
  FNE_REQUIRE(options_.workers >= 1, "service: workers must be >= 1");
  FNE_REQUIRE(options_.exec_threads >= 1, "service: exec_threads must be >= 1");
  FNE_REQUIRE(options_.queue_depth >= 1, "service: queue_depth must be >= 1");
  FNE_REQUIRE(options_.poll_ms >= 1, "service: poll_ms must be >= 1");
  listener_ = std::make_unique<TcpListener>(options_.bind, options_.port);
}

ScenarioService::~ScenarioService() { stop(); }

int ScenarioService::port() const noexcept { return listener_->port(); }

void ScenarioService::start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FNE_REQUIRE(!started_ && !stopping_, "service: start() is single-use");
    started_ = true;
  }
  if (options_.cache_budget_bytes > 0) {
    EngineCache::instance().set_budget_bytes(options_.cache_budget_bytes);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ScenarioService::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  listener_->shutdown();
  // Cancel EVERYTHING: queued requests stop before starting, in-flight
  // campaigns stop claiming jobs at the next executor fence.  Workers
  // then drain the queue (each entry resolves as cancelled) and exit.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions = sessions_;
  }
  for (const std::shared_ptr<Session>& s : sessions) s->cancel_all();
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (const std::shared_ptr<Session>& s : sessions) s->transport->shutdown();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

ServiceStats ScenarioService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScenarioService::queue_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ScenarioService::accept_loop() {
  while (true) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    std::unique_ptr<Transport> t = listener_->accept(options_.poll_ms);
    if (t == nullptr) continue;
    auto session = std::make_shared<Session>();
    session->transport = std::move(t);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      session->transport->shutdown();
      return;
    }
    ++stats_.connections;
    sessions_.push_back(session);
    readers_.emplace_back([this, session] { session_loop(session); });
  }
}

void ScenarioService::send_response(Session& session, const std::string& json) {
  const std::lock_guard<std::mutex> lock(session.send_mutex);
  if (!session.alive.load()) return;
  if (!session.transport->send(encode_frame(Message{MsgType::kResponse, json}))) {
    session.alive.store(false);
  }
}

void ScenarioService::reject(Session& session, std::uint64_t id, const std::string& reason,
                             std::uint64_t* counter) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++*counter;
  }
  JsonObject o;
  o.put("id", id)
      .put("status", "rejected")
      .put("message", reason)
      .put("retry_after_ms", options_.retry_after_ms);
  send_response(session, o.dump());
}

void ScenarioService::session_loop(std::shared_ptr<Session> session) {
  FrameBuffer frames;
  Message msg;
  while (session->alive.load()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) break;
    }
    const ReadStatus st = read_message(*session->transport, frames, msg, options_.poll_ms);
    if (st == ReadStatus::kTimeout) continue;
    if (st != ReadStatus::kMessage) break;  // EOF / error / corrupt: drop
    if (msg.type != MsgType::kRequest) break;  // protocol violation: drop

    // Oversized requests are refused before parsing — the service never
    // inspects a payload the admission policy already rejected, so the
    // reject carries id 0 (clients treat an unattributed reject as
    // addressed to their outstanding request).
    if (msg.payload.size() > options_.max_request_bytes) {
      reject(*session, 0, "request exceeds max_request_bytes", &stats_.rejected_oversized);
      continue;
    }

    std::uint64_t id = 0;
    std::string type;
    std::string campaign;
    int threads = 0;
    std::uint64_t millis = 0;
    try {
      const JsonValue req = JsonValue::parse(msg.payload);
      if (const JsonValue* v = req.find("id")) id = static_cast<std::uint64_t>(v->as_int());
      type = req.at("type").as_string();
      if (const JsonValue* v = req.find("campaign")) campaign = v->as_string();
      if (const JsonValue* v = req.find("threads")) threads = static_cast<int>(v->as_int());
      if (const JsonValue* v = req.find("millis")) millis = static_cast<std::uint64_t>(v->as_int());
    } catch (const std::exception& e) {
      JsonObject o;
      o.put("id", id).put("status", "error").put("message", std::string("bad request: ") + e.what());
      send_response(*session, o.dump());
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.errors;
      }
      continue;
    }

    if (type == "ping") {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.requests;
      ++stats_.completed;
      JsonObject o;
      o.put("id", id).put("status", "ok").put("payload", "");
      send_response(*session, o.dump());
      continue;
    }
    if (type == "stats") {
      ServiceStats snap;
      std::size_t depth = 0;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests;
        ++stats_.completed;
        snap = stats_;
        depth = queue_.size();
      }
      const EngineCacheStats cache = EngineCache::instance().stats();
      JsonObject c;
      c.put("leases", cache.leases)
          .put("engine_hits", cache.engine_hits)
          .put("engine_builds", cache.engine_builds)
          .put("graph_hits", cache.graph_hits)
          .put("graph_builds", cache.graph_builds)
          .put("evictions", cache.evictions)
          .put("bytes_resident", cache.bytes_resident)
          .put("peak_bytes", cache.peak_bytes)
          .put("budget_bytes", EngineCache::instance().budget_bytes());
      JsonObject s;
      s.put("kind", "service_stats")
          .put("connections", snap.connections)
          .put("requests", snap.requests)
          .put("completed", snap.completed)
          .put("errors", snap.errors)
          .put("cancelled", snap.cancelled)
          .put("rejected_queue_full", snap.rejected_queue_full)
          .put("rejected_expired", snap.rejected_expired)
          .put("rejected_oversized", snap.rejected_oversized)
          .put("queue", static_cast<std::uint64_t>(depth))
          .put("workers", options_.workers)
          .put_json("cache", c.dump());
      JsonObject o;
      o.put("id", id).put("status", "ok").put("payload", s.dump());
      send_response(*session, o.dump());
      continue;
    }
    if (type != "campaign" && type != "sleep") {
      JsonObject o;
      o.put("id", id).put("status", "error").put("message", "unknown request type '" + type + "'");
      send_response(*session, o.dump());
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
      continue;
    }

    Request req;
    req.session = session;
    req.id = id;
    req.type = type;
    req.campaign = std::move(campaign);
    req.threads = threads;
    req.millis = millis;
    req.enqueued = Clock::now();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) break;
      if (queue_.size() >= options_.queue_depth) {
        lock.unlock();
        reject(*session, id, "queue full", &stats_.rejected_queue_full);
        continue;
      }
      ++stats_.requests;
      session->register_token(req.token);
      queue_.push_back(std::move(req));
    }
    queue_cv_.notify_one();
  }
  // Reader gone: the client cannot receive anything we would compute.
  session->alive.store(false);
  session->cancel_all();
  session->transport->shutdown();
}

void ScenarioService::worker_loop() {
  while (true) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    handle_request(req);
  }
}

void ScenarioService::handle_request(const Request& req) {
  Session& session = *req.session;
  const auto respond_error = [&](const std::string& message, std::uint64_t* counter) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++*counter;
    }
    JsonObject o;
    o.put("id", req.id).put("status", "error").put("message", message);
    send_response(session, o.dump());
  };

  if (options_.queue_deadline_ms > 0 && ms_since(req.enqueued) > options_.queue_deadline_ms) {
    reject(session, req.id, "queue deadline exceeded", &stats_.rejected_expired);
    return;
  }
  if (req.token.cancelled()) {
    respond_error("cancelled", &stats_.cancelled);
    return;
  }

  if (req.type == "sleep") {
    const Clock::time_point t0 = Clock::now();
    while (ms_since(t0) < req.millis && !req.token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (req.token.cancelled()) {
      respond_error("cancelled", &stats_.cancelled);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
    }
    JsonObject o;
    o.put("id", req.id).put("status", "ok").put("payload", "");
    send_response(session, o.dump());
    return;
  }

  // type == "campaign"
  int threads = req.threads;
  if (threads <= 0) threads = options_.exec_threads;
  threads = std::clamp(threads, 1, options_.exec_threads);
  try {
    CampaignRunner runner(campaign_from_json(req.campaign));
    const CampaignReport report = runner.run(threads, nullptr, &req.token);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.completed;
    }
    JsonObject o;
    o.put("id", req.id).put("status", "ok").put("payload", report.to_json(false));
    send_response(session, o.dump());
  } catch (const CancelledError&) {
    respond_error("cancelled", &stats_.cancelled);
  } catch (const std::exception& e) {
    respond_error(std::string("campaign failed: ") + e.what(), &stats_.errors);
  }
}

// -- client ------------------------------------------------------------------

std::string make_request_json(std::uint64_t id, const std::string& type,
                              const std::string& campaign_json, int threads,
                              std::uint64_t millis) {
  JsonObject o;
  o.put("id", id).put("type", type);
  if (!campaign_json.empty()) o.put("campaign", campaign_json);
  if (threads > 0) o.put("threads", threads);
  if (millis > 0) o.put("millis", millis);
  return o.dump();
}

ServiceResponse parse_response_json(const std::string& text) {
  const JsonValue v = JsonValue::parse(text);
  ServiceResponse r;
  if (const JsonValue* f = v.find("id")) r.id = static_cast<std::uint64_t>(f->as_int());
  r.status = v.at("status").as_string();
  if (const JsonValue* f = v.find("payload")) r.payload = f->as_string();
  if (const JsonValue* f = v.find("message")) r.message = f->as_string();
  if (const JsonValue* f = v.find("retry_after_ms")) {
    r.retry_after_ms = static_cast<std::uint64_t>(f->as_int());
  }
  return r;
}

ServiceClient::ServiceClient(const std::string& host, int port, int timeout_ms) {
  transport_ = tcp_connect(host, port, timeout_ms);
  FNE_REQUIRE(transport_ != nullptr,
              "service client: cannot connect to " + host + ":" + std::to_string(port));
}

ServiceResponse ServiceClient::campaign(const std::string& campaign_json, int threads,
                                        int timeout_ms) {
  const std::uint64_t id = next_id_++;
  return roundtrip(make_request_json(id, "campaign", campaign_json, threads, 0), id, timeout_ms);
}

ServiceResponse ServiceClient::stats(int timeout_ms) {
  const std::uint64_t id = next_id_++;
  return roundtrip(make_request_json(id, "stats", "", 0, 0), id, timeout_ms);
}

ServiceResponse ServiceClient::ping(int timeout_ms) {
  const std::uint64_t id = next_id_++;
  return roundtrip(make_request_json(id, "ping", "", 0, 0), id, timeout_ms);
}

ServiceResponse ServiceClient::sleep_for(std::uint64_t millis, int timeout_ms) {
  const std::uint64_t id = next_id_++;
  return roundtrip(make_request_json(id, "sleep", "", 0, millis), id, timeout_ms);
}

std::uint64_t ServiceClient::send_only(const std::string& type, const std::string& campaign_json,
                                       std::uint64_t millis) {
  const std::uint64_t id = next_id_++;
  const std::string req = make_request_json(id, type, campaign_json, 0, millis);
  FNE_REQUIRE(transport_->send(encode_frame(Message{MsgType::kRequest, req})),
              "service client: send failed (connection dead)");
  return id;
}

ServiceResponse ServiceClient::await(std::uint64_t id, int timeout_ms) {
  const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  Message msg;
  while (true) {
    FNE_REQUIRE(Clock::now() < deadline, "service client: response timeout");
    const ReadStatus st = read_message(*transport_, frames_, msg, 50);
    if (st == ReadStatus::kTimeout) continue;
    FNE_REQUIRE(st == ReadStatus::kMessage,
                "service client: connection lost awaiting response");
    if (msg.type != MsgType::kResponse) continue;
    const ServiceResponse r = parse_response_json(msg.payload);
    // id 0 is the service's unattributed reject (oversized requests are
    // refused unparsed) — deliver it to whoever is waiting.
    if (r.id == id || r.id == 0) return r;
  }
}

void ServiceClient::disconnect() { transport_->shutdown(); }

ServiceResponse ServiceClient::roundtrip(const std::string& request_json, std::uint64_t id,
                                         int timeout_ms) {
  FNE_REQUIRE(transport_->send(encode_frame(Message{MsgType::kRequest, request_json})),
              "service client: send failed (connection dead)");
  return await(id, timeout_ms);
}

}  // namespace fne
