#include "spectral/fiedler.hpp"

#include "core/traversal.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "util/require.hpp"

namespace fne {

FiedlerResult fiedler_vector(const Graph& g, const VertexSet& alive, std::uint64_t seed) {
  FNE_REQUIRE(alive.count() >= 2, "Fiedler vector needs >= 2 alive vertices");
  MaskedLaplacian lap(g, alive);
  const std::size_t k = lap.dim();

  LanczosOptions opts;
  opts.num_eigenpairs = 1;
  opts.seed = seed;
  opts.max_iterations = 400;
  opts.tolerance = 1e-8;

  const std::vector<std::vector<double>> deflation{std::vector<double>(k, 1.0)};
  const auto res = lanczos_smallest(
      [&lap](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); }, k,
      deflation, opts);

  FiedlerResult out;
  out.converged = res.converged && !res.values.empty();
  out.vector.assign(g.num_vertices(), 0.0);
  if (!res.values.empty()) {
    out.lambda2 = res.values[0];
    const auto& verts = lap.vertices();
    for (std::size_t i = 0; i < verts.size(); ++i) out.vector[verts[i]] = res.vectors[0][i];
  }
  return out;
}

}  // namespace fne
