#include "spectral/fiedler.hpp"

#include <cmath>

#include "core/traversal.hpp"
#include "spectral/operator.hpp"
#include "util/require.hpp"

namespace fne {

FiedlerResult fiedler_vector(const Graph& g, const VertexSet& alive,
                             const FiedlerOptions& options) {
  FNE_REQUIRE(alive.count() >= 2, "Fiedler vector needs >= 2 alive vertices");
  // Solve over the compact sub-CSR: one build (or none, when the caller
  // maintains one incrementally) buys every Lanczos apply a branch-free
  // walk of alive arcs only — no to_sub gather, no dead-neighbor test, no
  // per-apply degree recount (DESIGN.md §7).
  SubCsr local;
  const SubCsr* sub = options.sub;
  if (sub == nullptr) {
    local.build(g, alive);
    sub = &local;
  }
  FNE_REQUIRE(sub->dim() == alive.count(), "prebuilt SubCsr does not match the alive mask");
  SubCsrLaplacian lap(*sub);
  const std::size_t k = lap.dim();

  LanczosOptions opts;
  opts.num_eigenpairs = 1;
  opts.seed = options.seed;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  opts.scratch = options.scratch;
  opts.accel = options.accel;
  if (!std::isfinite(opts.accel.op_upper_bound)) {
    opts.accel.op_upper_bound = gershgorin_upper_bound(*sub);
  }

  // Restrict the warm-start vector (original ids) to the masked subspace.
  std::vector<double> initial;
  if (options.warm_start != nullptr && options.warm_start->size() == g.num_vertices()) {
    const auto& verts = lap.vertices();
    initial.resize(k);
    for (std::size_t i = 0; i < verts.size(); ++i) initial[i] = (*options.warm_start)[verts[i]];
    opts.initial = &initial;
  }

  const std::vector<std::vector<double>> deflation{std::vector<double>(k, 1.0)};
  const auto res = lanczos_smallest(
      [&lap](const std::vector<double>& x, std::vector<double>& y) { lap.apply(x, y); }, k,
      deflation, opts);

  FiedlerResult out;
  out.converged = res.converged && !res.values.empty();
  out.vector.assign(g.num_vertices(), 0.0);
  if (!res.values.empty()) {
    out.lambda2 = res.values[0];
    const auto& verts = lap.vertices();
    for (std::size_t i = 0; i < verts.size(); ++i) out.vector[verts[i]] = res.vectors[0][i];
  }
  return out;
}

FiedlerResult fiedler_vector(const Graph& g, const VertexSet& alive, std::uint64_t seed) {
  FiedlerOptions options;
  options.seed = seed;
  return fiedler_vector(g, alive, options);
}

}  // namespace fne
