#include "spectral/expander_certificate.hpp"

#include <cmath>

#include "spectral/fiedler.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"
#include "util/require.hpp"

namespace fne {

ExpanderCertificate certify_expander(const Graph& g, const VertexSet& alive,
                                     const ExpanderCertOptions& options) {
  const std::uint64_t seed = options.seed;
  const vid k = alive.count();
  FNE_REQUIRE(k >= 3, "expander certificate needs >= 3 vertices");
  // Verify d-regularity within the mask.
  vid degree = kInvalidVertex;
  alive.for_each([&](vid v) {
    vid d = 0;
    for (vid w : g.neighbors(v)) {
      if (alive.test(w)) ++d;
    }
    if (degree == kInvalidVertex) degree = d;
    FNE_REQUIRE(d == degree, "expander certificate requires a regular (sub)graph");
  });

  ExpanderCertificate cert;
  cert.degree = static_cast<double>(degree);

  // One sub-CSR serves both solves.
  SubCsr sub;
  sub.build(g, alive);

  // λ₂(A) = d - λ₂(L): smallest nonzero Laplacian eigenvalue.
  FiedlerOptions fopts;
  fopts.seed = seed;
  fopts.sub = &sub;
  fopts.accel = options.accel;
  const FiedlerResult fiedler = fiedler_vector(g, alive, fopts);
  cert.lambda2_adj = cert.degree - fiedler.lambda2;

  // λ_min(A) = d - λ_max(L): Lanczos on -L, no deflation.
  SubCsrLaplacian lap(sub);
  LanczosOptions opts;
  opts.num_eigenpairs = 1;
  opts.seed = seed + 1;
  opts.max_iterations = 400;
  // The top solve runs on -L, whose spectrum sits in [-λmax(L), 0]: the
  // upper bound is 0, and shift-invert needs σ < -λmax(L) so -L - σI
  // stays positive definite — one below the Gershgorin bound does it.
  opts.accel = options.accel;
  opts.accel.op_upper_bound = 0.0;
  if (opts.accel.mode == SpectralMode::kShiftInvert) {
    opts.accel.shift = -(gershgorin_upper_bound(sub) + 1.0);
  }
  const auto neg = lanczos_smallest(
      [&lap](const std::vector<double>& x, std::vector<double>& y) {
        lap.apply(x, y);
        for (auto& v : y) v = -v;
      },
      lap.dim(), {}, opts);
  const double lambda_max_l = neg.values.empty() ? 2.0 * cert.degree : -neg.values[0];
  cert.lambda_min_adj = cert.degree - lambda_max_l;

  cert.lambda = std::max(std::fabs(cert.lambda2_adj), std::fabs(cert.lambda_min_adj));
  cert.spectral_gap = cert.degree - cert.lambda2_adj;
  cert.edge_expansion_lower = cert.spectral_gap / 2.0;
  cert.is_ramanujan = cert.lambda <= 2.0 * std::sqrt(cert.degree - 1.0) + 1e-6;
  cert.converged = fiedler.converged && neg.converged;
  return cert;
}

ExpanderCertificate certify_expander(const Graph& g, const VertexSet& alive, std::uint64_t seed) {
  ExpanderCertOptions options;
  options.seed = seed;
  return certify_expander(g, alive, options);
}

ExpanderCertificate certify_expander(const Graph& g, std::uint64_t seed) {
  return certify_expander(g, VertexSet::full(g.num_vertices()), seed);
}

}  // namespace fne
