// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts,
// EISPACK tql2 lineage).  Used to post-process the Lanczos recurrence.
#pragma once

#include <vector>

namespace fne {

/// Eigen-decomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` (size k) and off-diagonal `off` (size k-1; off[i] couples i and
/// i+1).  On return, eigenvalues are ascending in `values` and, if
/// `vectors` is non-null, column j of the k×k row-major matrix holds the
/// j-th eigenvector: (*vectors)[i * k + j].
///
/// `init` (optional, row-major k×k) seeds the rotation accumulator with
/// an orthogonal matrix Q instead of the identity: the returned columns
/// are then Q·z_j — eigenvectors expressed in the basis Q reduces FROM.
/// This is the back-transform hook sym_eigen uses after its Householder
/// reduction (blocked Lanczos Rayleigh–Ritz, DESIGN.md §9).
void tridiag_eigen(std::vector<double> diag, std::vector<double> off,
                   std::vector<double>& values, std::vector<double>* vectors,
                   const std::vector<double>* init = nullptr);

/// Eigen-decomposition of a dense symmetric k×k row-major matrix `a`:
/// Householder reduction to tridiagonal form (EISPACK tred2 lineage)
/// followed by the QL solve above.  Same output convention as
/// tridiag_eigen; ~an order of magnitude cheaper than the cyclic Jacobi
/// oracle (spectral/jacobi.hpp) at the basis sizes Rayleigh–Ritz meets.
void sym_eigen(std::vector<double> a, std::size_t k, std::vector<double>& values,
               std::vector<double>* vectors);

}  // namespace fne
