// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts,
// EISPACK tql2 lineage).  Used to post-process the Lanczos recurrence.
#pragma once

#include <vector>

namespace fne {

/// Eigen-decomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` (size k) and off-diagonal `off` (size k-1; off[i] couples i and
/// i+1).  On return, eigenvalues are ascending in `values` and, if
/// `vectors` is non-null, column j of the k×k row-major matrix holds the
/// j-th eigenvector: (*vectors)[i * k + j].
void tridiag_eigen(std::vector<double> diag, std::vector<double> off,
                   std::vector<double>& values, std::vector<double>* vectors);

}  // namespace fne
