// Lanczos iteration with full reorthogonalization for the smallest
// eigenpairs of an implicit symmetric operator.
//
// Full reorthogonalization is O(iter^2 · n) but rock solid; iteration
// counts stay modest (<= 300) for the graph sizes this library handles.
// It runs as two-pass classical Gram–Schmidt (CGS2): all coefficients
// against the incoming vector, then one fused blocked rank-k update —
// the dominant FLOPs of a solve, streamed once per pass and OpenMP-
// parallel above kSpectralParallelDim (spectral/operator.hpp).
// Deflation vectors (e.g. the all-ones kernel of a connected Laplacian)
// are projected out of every Krylov vector.
//
// Determinism contract (DESIGN.md §7): every reduction (dot, norm, the
// rank-k update) uses a fixed 1024-element chunk order regardless of the
// thread count or whether the parallel path is taken at all, so a solve
// is a pure function of (operator, n, deflation, options) — OMP_NUM_THREADS
// never changes a bit of the result.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fne {

struct LanczosResult {
  std::vector<double> values;               ///< converged Ritz values, ascending
  std::vector<std::vector<double>> vectors; ///< matching Ritz vectors (unit norm)
  int iterations = 0;
  bool converged = false;
};

/// Reusable buffers for repeated Lanczos solves.  The Krylov basis is the
/// dominant allocation of an eigensolve (iterations × n doubles); pooling
/// it across the cull iterations of a prune run eliminates that traffic.
/// Contents are scratch — only capacity is carried between calls.
struct LanczosScratch {
  std::vector<std::vector<double>> basis;
  std::vector<double> w;
  std::vector<double> q;
  std::vector<double> coeff;  ///< Gram–Schmidt coefficient buffer
};

struct LanczosOptions {
  int num_eigenpairs = 1;      ///< how many smallest pairs to extract
  int max_iterations = 300;
  double tolerance = 1e-9;     ///< residual bound |beta * y_last|
  std::uint64_t seed = 7;
  /// Optional warm-start vector (length n, pre-deflation).  It is projected
  /// against `deflation` and normalized internally; a degenerate warm start
  /// falls back to the seeded random start.  nullptr = random start.
  const std::vector<double>* initial = nullptr;
  /// Optional buffer pool; nullptr allocates locally.
  LanczosScratch* scratch = nullptr;
};

using LinearOperator = std::function<void(const std::vector<double>&, std::vector<double>&)>;

/// Smallest eigenpairs of `op` (dimension n) orthogonal to `deflation`.
[[nodiscard]] LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                                             const std::vector<std::vector<double>>& deflation,
                                             const LanczosOptions& options = {});

/// Blocked (multi-vector) variant for the k >= 2 eigenpair consumers
/// (embedding spectral coordinates, expander certificates, DESIGN.md §9).
///
/// One block-Krylov basis serves every wanted pair: `block_size` start
/// vectors are expanded one operator apply at a time, every new vector is
/// CGS2+DGKS-reorthogonalized against the WHOLE basis (the same fused
/// rank-m update as the k = 1 path, so the dominant FLOPs stay streamed
/// and OpenMP-parallel above kSpectralParallelDim), and Rayleigh–Ritz on
/// the projected matrix extracts the k smallest pairs.  Against k
/// repeated deflated rank-1 solves this shares the bottom of the spectrum
/// instead of re-converging through it per pair, and — unlike a single
/// Krylov chain — resolves eigenvalue multiplicities (mesh Laplacians are
/// full of them) without deflation tricks.
///
/// Determinism contract: identical to lanczos_smallest — every reduction
/// is chunk-ordered, the dense Rayleigh–Ritz solve is sequential, and the
/// start block is a pure function of `seed`, so a solve is bit-identical
/// for ANY OMP thread count.
struct BlockLanczosOptions {
  int num_eigenpairs = 2;   ///< k smallest pairs to extract
  /// Start-block width; <= 0 means min(2, num_eigenpairs).  Width 2 is
  /// the measured sweet spot: wide enough that the degenerate pairs mesh
  /// Laplacians produce converge together, narrow enough that the
  /// per-direction polynomial degree (basis / block) stays high — a
  /// width-k block quadruples the basis a k = 4 solve needs.
  int block_size = 0;
  int max_basis = 300;      ///< total Krylov vectors cap (memory: max_basis x n)
  double tolerance = 1e-9;  ///< residual bound per wanted pair
  std::uint64_t seed = 7;
  LanczosScratch* scratch = nullptr;  ///< optional buffer pool
};

[[nodiscard]] LanczosResult lanczos_smallest_block(
    const LinearOperator& op, std::size_t n,
    const std::vector<std::vector<double>>& deflation, const BlockLanczosOptions& options = {});

}  // namespace fne
