// Lanczos iteration with full reorthogonalization for the smallest
// eigenpairs of an implicit symmetric operator.
//
// Full reorthogonalization is O(iter^2 · n) but rock solid; iteration
// counts stay modest (<= 300) for the graph sizes this library handles.
// It runs as two-pass classical Gram–Schmidt (CGS2): all coefficients
// against the incoming vector, then one fused blocked rank-k update —
// the dominant FLOPs of a solve, streamed once per pass and OpenMP-
// parallel above kSpectralParallelDim (spectral/operator.hpp).
// Deflation vectors (e.g. the all-ones kernel of a connected Laplacian)
// are projected out of every Krylov vector.
//
// Determinism contract (DESIGN.md §7): every reduction (dot, norm, the
// rank-k update) uses a fixed 1024-element chunk order regardless of the
// thread count or whether the parallel path is taken at all, so a solve
// is a pure function of (operator, n, deflation, options) — OMP_NUM_THREADS
// never changes a bit of the result.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace fne {

/// Convergence-acceleration mode of a solve (DESIGN.md §10).
///
///   kPlain       — Krylov recurrence directly on the operator (the
///                  pre-PR-6 behavior, bit for bit).
///   kFiltered    — Chebyshev polynomial filtering: the recurrence runs
///                  on s·T_d(ℓ(L)), an affine-mapped degree-d Chebyshev
///                  polynomial that damps [cut, upper] into [-1, 1] and
///                  amplifies the bottom cluster exponentially, so
///                  clustered low spectra separate in tens instead of
///                  thousands of iterations.  Needs op_upper_bound
///                  (Gershgorin over SubCsr rows for Laplacians).
///   kShiftInvert — the recurrence runs on -(L - σI)^{-1}, applied by a
///                  deterministic chunk-ordered CG inner solve; for the
///                  near-singular cases filtering can't crack.
///   kAuto        — plain below kFilteredAutoDim; filtered at or above
///                  it when op_upper_bound is available (else plain).
///
/// In every accelerated mode eigenvalues are recovered by Rayleigh
/// quotient against the ORIGINAL operator and convergence is decided by
/// the true residual ‖Lx − ρx‖ ≤ tolerance, so tolerances stay
/// comparable across modes.  The determinism contract is unchanged: a
/// solve is a pure function of its inputs for ANY OMP thread count.
enum class SpectralMode { kPlain, kFiltered, kShiftInvert, kAuto };

/// Parse "plain" | "filtered" | "shift_invert" | "auto" (REQUIREs a
/// valid name, listing the alternatives — registry-style hygiene).
[[nodiscard]] SpectralMode spectral_mode_from_string(const std::string& name);
[[nodiscard]] const char* spectral_mode_name(SpectralMode mode);

/// Dimension at or above which kAuto switches from plain to filtered.
/// Below it the plain solver converges within the engine's staged caps
/// and auto must not perturb existing results (the deterministic engine
/// == reference parity runs through this resolution on both sides).
inline constexpr std::size_t kFilteredAutoDim = 8192;

/// Acceleration knobs shared by the rank-1 and blocked solvers.
struct SpectralAccel {
  SpectralMode mode = SpectralMode::kPlain;
  /// Chebyshev degree d; <= 0 picks a degree from the probe-estimated
  /// cut ratio (clamped to [6, 24]).
  int filter_degree = 0;
  /// Upper bound on the operator spectrum (REQUIREd finite in filtered
  /// mode; kAuto resolves to plain without it).  For a SubCsr Laplacian
  /// use gershgorin_upper_bound(); for -L the bound is 0.
  double op_upper_bound = std::numeric_limits<double>::quiet_NaN();
  /// Shift σ for kShiftInvert.  0 targets the bottom of a PSD operator
  /// whose kernel is deflated (the Fiedler case).
  double shift = 0.0;
  /// Inner-CG relative residual; tight so the Krylov recurrence sees a
  /// consistent operator.
  double cg_tolerance = 1e-10;
  int cg_max_iterations = 4000;
};

/// The kAuto decision, shared by every consumer so the engine and the
/// stateless reference can never disagree: filtered iff n >=
/// kFilteredAutoDim and the accel carries a finite upper bound.
[[nodiscard]] SpectralMode resolve_spectral_mode(const SpectralAccel& accel, std::size_t n);

struct LanczosResult {
  std::vector<double> values;               ///< converged Ritz values, ascending
  std::vector<std::vector<double>> vectors; ///< matching Ritz vectors (unit norm)
  int iterations = 0;
  bool converged = false;
};

/// Reusable buffers for repeated Lanczos solves.  The Krylov basis is the
/// dominant allocation of an eigensolve (iterations × n doubles); pooling
/// it across the cull iterations of a prune run eliminates that traffic.
/// Contents are scratch — only capacity is carried between calls.
struct LanczosScratch {
  std::vector<std::vector<double>> basis;
  std::vector<double> w;
  std::vector<double> q;
  std::vector<double> coeff;  ///< Gram–Schmidt coefficient buffer

  /// Pooled heap footprint (capacities).  The Krylov basis dominates an
  /// engine's resident memory, so the cache budget must see it.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t total = (w.capacity() + q.capacity() + coeff.capacity()) * sizeof(double) +
                        basis.capacity() * sizeof(std::vector<double>);
    for (const std::vector<double>& b : basis) total += b.capacity() * sizeof(double);
    return total;
  }
};

struct LanczosOptions {
  int num_eigenpairs = 1;      ///< how many smallest pairs to extract
  int max_iterations = 300;
  double tolerance = 1e-9;     ///< residual bound |beta * y_last|
  std::uint64_t seed = 7;
  /// Optional warm-start vector (length n, pre-deflation).  It is projected
  /// against `deflation` and normalized internally; a degenerate warm start
  /// falls back to the seeded random start.  nullptr = random start.
  const std::vector<double>* initial = nullptr;
  /// Optional buffer pool; nullptr allocates locally.
  LanczosScratch* scratch = nullptr;
  /// Acceleration mode; kPlain keeps the pre-PR-6 solve bit for bit.
  SpectralAccel accel;
};

using LinearOperator = std::function<void(const std::vector<double>&, std::vector<double>&)>;

/// Smallest eigenpairs of `op` (dimension n) orthogonal to `deflation`.
[[nodiscard]] LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                                             const std::vector<std::vector<double>>& deflation,
                                             const LanczosOptions& options = {});

/// Blocked (multi-vector) variant for the k >= 2 eigenpair consumers
/// (embedding spectral coordinates, expander certificates, DESIGN.md §9).
///
/// One block-Krylov basis serves every wanted pair: `block_size` start
/// vectors are expanded one operator apply at a time, every new vector is
/// CGS2+DGKS-reorthogonalized against the WHOLE basis (the same fused
/// rank-m update as the k = 1 path, so the dominant FLOPs stay streamed
/// and OpenMP-parallel above kSpectralParallelDim), and Rayleigh–Ritz on
/// the projected matrix extracts the k smallest pairs.  Against k
/// repeated deflated rank-1 solves this shares the bottom of the spectrum
/// instead of re-converging through it per pair, and — unlike a single
/// Krylov chain — resolves eigenvalue multiplicities (mesh Laplacians are
/// full of them) without deflation tricks.
///
/// Determinism contract: identical to lanczos_smallest — every reduction
/// is chunk-ordered, the dense Rayleigh–Ritz solve is sequential, and the
/// start block is a pure function of `seed`, so a solve is bit-identical
/// for ANY OMP thread count.
struct BlockLanczosOptions {
  int num_eigenpairs = 2;   ///< k smallest pairs to extract
  /// Start-block width; <= 0 means min(2, num_eigenpairs).  Width 2 is
  /// the measured sweet spot: wide enough that the degenerate pairs mesh
  /// Laplacians produce converge together, narrow enough that the
  /// per-direction polynomial degree (basis / block) stays high — a
  /// width-k block quadruples the basis a k = 4 solve needs.
  int block_size = 0;
  int max_basis = 300;      ///< total Krylov vectors cap (memory: max_basis x n)
  double tolerance = 1e-9;  ///< residual bound per wanted pair
  std::uint64_t seed = 7;
  LanczosScratch* scratch = nullptr;  ///< optional buffer pool
  /// Acceleration mode; kPlain keeps the pre-PR-6 solve bit for bit.
  SpectralAccel accel;
};

[[nodiscard]] LanczosResult lanczos_smallest_block(
    const LinearOperator& op, std::size_t n,
    const std::vector<std::vector<double>>& deflation, const BlockLanczosOptions& options = {});

}  // namespace fne
