// Lanczos iteration with full reorthogonalization for the smallest
// eigenpairs of an implicit symmetric operator.
//
// Full reorthogonalization is O(iter^2 · n) but rock solid; iteration
// counts stay modest (<= 300) for the graph sizes this library handles.
// Deflation vectors (e.g. the all-ones kernel of a connected Laplacian)
// are projected out of every Krylov vector.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fne {

struct LanczosResult {
  std::vector<double> values;               ///< converged Ritz values, ascending
  std::vector<std::vector<double>> vectors; ///< matching Ritz vectors (unit norm)
  int iterations = 0;
  bool converged = false;
};

struct LanczosOptions {
  int num_eigenpairs = 1;      ///< how many smallest pairs to extract
  int max_iterations = 300;
  double tolerance = 1e-9;     ///< residual bound |beta * y_last|
  std::uint64_t seed = 7;
};

using LinearOperator = std::function<void(const std::vector<double>&, std::vector<double>&)>;

/// Smallest eigenpairs of `op` (dimension n) orthogonal to `deflation`.
[[nodiscard]] LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                                             const std::vector<std::vector<double>>& deflation,
                                             const LanczosOptions& options = {});

}  // namespace fne
