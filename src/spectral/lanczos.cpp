#include "spectral/lanczos.hpp"

#include <cmath>

#include "spectral/tridiag.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void project_out(const std::vector<std::vector<double>>& basis, std::size_t count,
                 std::vector<double>& x) {
  for (std::size_t i = 0; i < count; ++i) {
    const double c = dot(basis[i], x);
    if (c != 0.0) axpy(-c, basis[i], x);
  }
}

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                               const std::vector<std::vector<double>>& deflation,
                               const LanczosOptions& options) {
  FNE_REQUIRE(n >= 1, "empty operator");
  FNE_REQUIRE(options.num_eigenpairs >= 1, "need at least one eigenpair");
  LanczosResult result;

  // Normalize deflation vectors.
  std::vector<std::vector<double>> defl = deflation;
  for (auto& b : defl) {
    const double nb = norm(b);
    FNE_REQUIRE(nb > 0.0, "zero deflation vector");
    for (auto& x : b) x /= nb;
  }
  const std::size_t usable =
      n > defl.size() ? n - defl.size() : 0;  // dimension of the deflated space
  if (usable == 0) {
    result.converged = true;
    return result;
  }

  const int max_iter =
      static_cast<int>(std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_iterations)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;  // Lanczos vectors q_1..q_j
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };
  std::vector<double> alpha;
  std::vector<double> beta;

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);
  bool warm = options.initial != nullptr && options.initial->size() == n;
  if (warm) {
    q = *options.initial;
  } else {
    for (auto& x : q) x = rng.uniform01() - 0.5;
  }
  project_out(defl, defl.size(), q);
  {
    double nq = norm(q);
    if (warm && !(nq > 1e-12)) {
      // Degenerate warm start (e.g. orthogonal remnant): seeded random fallback.
      for (auto& x : q) x = rng.uniform01() - 0.5;
      project_out(defl, defl.size(), q);
      nq = norm(q);
    }
    FNE_REQUIRE(nq > 0.0, "degenerate start vector");
    for (auto& x : q) x /= nq;
  }
  push_basis(q);

  std::vector<double>& w = scratch.w;
  w.resize(n);
  for (int j = 0; j < max_iter; ++j) {
    op(basis[basis_count - 1], w);
    const double a = dot(basis[basis_count - 1], w);
    alpha.push_back(a);
    // w -= a*q_j + b_{j-1}*q_{j-1}; then full reorthogonalization.
    axpy(-a, basis[basis_count - 1], w);
    if (j > 0) axpy(-beta.back(), basis[basis_count - 2], w);
    project_out(defl, defl.size(), w);
    for (int pass = 0; pass < 2; ++pass) project_out(basis, basis_count, w);

    const double b = norm(w);
    // Convergence check every few steps (or on breakdown).
    const bool last = (j + 1 == max_iter) || b < 1e-13;
    if (last || (j + 1) % 10 == 0) {
      std::vector<double> values;
      std::vector<double> z;
      tridiag_eigen(alpha, beta, values, &z);
      const std::size_t k = alpha.size();
      const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(k));
      bool all_converged = true;
      for (int e = 0; e < want; ++e) {
        const double resid = std::fabs(b * z[(k - 1) * k + static_cast<std::size_t>(e)]);
        if (resid > options.tolerance) {
          all_converged = false;
          break;
        }
      }
      if (all_converged || last) {
        result.iterations = j + 1;
        result.converged = all_converged || b < 1e-13;
        result.values.assign(values.begin(), values.begin() + want);
        result.vectors.assign(static_cast<std::size_t>(want), std::vector<double>(n, 0.0));
        for (int e = 0; e < want; ++e) {
          auto& vec = result.vectors[static_cast<std::size_t>(e)];
          for (std::size_t i = 0; i < k; ++i) {
            axpy(z[i * k + static_cast<std::size_t>(e)], basis[i], vec);
          }
          const double nv = norm(vec);
          if (nv > 0.0) {
            for (auto& x : vec) x /= nv;
          }
        }
        return result;
      }
    }
    if (b < 1e-13) break;  // invariant subspace exhausted
    beta.push_back(b);
    for (auto& x : w) x /= b;
    push_basis(w);
  }

  // max_iter loop exited without returning (shouldn't happen); mark failure.
  result.converged = false;
  return result;
}

}  // namespace fne
