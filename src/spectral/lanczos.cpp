#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "spectral/kernels.hpp"
#include "spectral/operator.hpp"  // kSpectralParallelDim
#include "spectral/tridiag.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

SpectralMode spectral_mode_from_string(const std::string& name) {
  if (name == "plain") return SpectralMode::kPlain;
  if (name == "filtered") return SpectralMode::kFiltered;
  if (name == "shift_invert") return SpectralMode::kShiftInvert;
  if (name == "auto") return SpectralMode::kAuto;
  FNE_REQUIRE(false, "unknown spectral_mode '" + name +
                         "' (expected plain | filtered | shift_invert | auto)");
  return SpectralMode::kPlain;  // unreachable
}

const char* spectral_mode_name(SpectralMode mode) {
  switch (mode) {
    case SpectralMode::kPlain: return "plain";
    case SpectralMode::kFiltered: return "filtered";
    case SpectralMode::kShiftInvert: return "shift_invert";
    case SpectralMode::kAuto: return "auto";
  }
  return "plain";
}

SpectralMode resolve_spectral_mode(const SpectralAccel& accel, std::size_t n) {
  if (accel.mode != SpectralMode::kAuto) return accel.mode;
  if (n >= kFilteredAutoDim && std::isfinite(accel.op_upper_bound)) {
    return SpectralMode::kFiltered;
  }
  return SpectralMode::kPlain;
}

namespace {

// Thin local names for the shared chunk-deterministic kernels
// (spectral/kernels.hpp) so the solver bodies below read as before PR 6.
double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return spectral_dot(a, b);
}
double norm(const std::vector<double>& a) { return spectral_norm(a); }
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  spectral_axpy(alpha, x, y);
}
void orthogonalize(const std::vector<std::vector<double>>& basis, std::size_t count,
                   std::vector<double>& x, std::vector<double>& coeff) {
  spectral_orthogonalize(basis, count, x, coeff);
}

/// DGKS criterion: after one full Gram–Schmidt pass, re-orthogonalize
/// again only when the pass removed a large fraction of the vector (norm
/// dropped below 1/√2 of the pre-pass norm), i.e. when cancellation may
/// have left O(ε·‖before‖) residue in the basis span.  The decision is a
/// pure function of the computed norms, so determinism is unaffected.
constexpr double kDgks = 0.70710678118654752;

/// Plain-mode probe budget before a filtered solve commits to the
/// surrogate: cheap spectra converge inside the probe and return directly;
/// hard spectra pay 16 iterations for the Ritz estimates that place the
/// filter cut (DESIGN.md §10).
constexpr int kFilterProbeIterations = 16;

std::vector<std::vector<double>> normalize_deflation(
    const std::vector<std::vector<double>>& deflation) {
  std::vector<std::vector<double>> defl = deflation;
  for (auto& b : defl) {
    const double nb = norm(b);
    FNE_REQUIRE(nb > 0.0, "zero deflation vector");
    for (auto& x : b) x /= nb;
  }
  return defl;
}

// ---------------------------------------------------------------------------
// Surrogate operators (DESIGN.md §10).  Both are pure functions of their
// inputs: the Chebyshev recurrence is elementwise on top of the base apply,
// and the CG inner solve uses only the chunk-deterministic kernels, so a
// surrogate apply is bit-identical for any OMP thread count.
// ---------------------------------------------------------------------------

/// How the Chebyshev surrogate maps the base spectrum, fixed before the
/// accelerated solve starts from the probe's Ritz estimates.
struct FilterPlan {
  bool usable = false;
  double map_mul = 0.0;  ///< ℓ(λ) = map_mul·λ + map_add sends [cut, upper] to [-1, 1]
  double map_add = 0.0;
  double sign = 1.0;     ///< s = (-1)^{d+1}: makes s·T_d(ℓ(λ)) most negative at the bottom
  int degree = 0;
};

/// Place the damping interval from probe Ritz values: the want-th smallest
/// Ritz value θ bounds the want-th smallest eigenvalue from above, so a cut
/// 10% of the way from θ to the upper bound keeps every wanted eigenvalue in
/// the amplified region.  The auto degree grows as the wanted fraction of
/// the spectrum shrinks (d ≈ 5/(2√r), r = relative cut position), clamped to
/// [6, 24] so one surrogate apply stays a bounded number of base applies.
FilterPlan plan_filter(const std::vector<double>& probe_values, int want, int requested_degree,
                       double upper) {
  FilterPlan plan;
  if (probe_values.empty() || !std::isfinite(upper)) return plan;
  const double lo = probe_values.front();
  const std::size_t theta_idx =
      std::min<std::size_t>(probe_values.size(), static_cast<std::size_t>(want)) - 1;
  const double theta = probe_values[theta_idx];
  const double cut = theta + 0.1 * (upper - theta);
  if (!(cut < upper) || !(upper - cut > 1e-12 * std::max(1.0, std::fabs(upper)))) return plan;
  int degree = requested_degree;
  if (degree <= 0) {
    const double r = std::clamp((cut - lo) / (upper - lo), 1e-6, 0.9);
    degree = static_cast<int>(std::ceil(5.0 / (2.0 * std::sqrt(r))));
    degree = std::clamp(degree, 6, 24);
  }
  plan.usable = true;
  plan.map_mul = 2.0 / (upper - cut);
  plan.map_add = -(upper + cut) / (upper - cut);
  plan.degree = degree;
  plan.sign = degree % 2 == 1 ? 1.0 : -1.0;
  return plan;
}

/// y = s·T_d(ℓ(L)) x via the three-term recurrence
/// t_{k+1} = 2(map_mul·L·t_k + map_add·t_k) − t_{k−1}.  Eigenvalues below
/// the cut map below −1 where |T_d| grows like cosh(d·acosh|ℓ|) — the
/// bottom cluster separates exponentially in d while [cut, upper] stays
/// damped inside [−1, 1].
class ChebyshevSurrogate {
 public:
  ChebyshevSurrogate(const LinearOperator& base, const FilterPlan& plan)
      : base_(&base), plan_(plan) {
    FNE_REQUIRE(plan.usable && plan.degree >= 1, "unusable filter plan");
  }

  void apply(const std::vector<double>& x, std::vector<double>& out) const {
    const std::size_t n = x.size();
    t_prev_ = x;
    t_cur_.resize(n);
    y_.resize(n);
    (*base_)(x, y_);
    elementwise_map1(n);
    for (int k = 2; k <= plan_.degree; ++k) {
      (*base_)(t_cur_, y_);
      elementwise_step(n);
      std::swap(t_prev_, t_cur_);
      std::swap(t_cur_, y_);
    }
    out.resize(n);
    const double s = plan_.sign;
    const double* tp = t_cur_.data();
    double* op = out.data();
#ifdef _OPENMP
#pragma omp parallel for simd schedule(static) if (n >= kSpectralParallelDim)
#else
    FNE_PRAGMA_SIMD
#endif
    for (std::size_t i = 0; i < n; ++i) op[i] = s * tp[i];
  }

 private:
  // t_cur = map_mul·(L x) + map_add·x  (T_1 of the mapped operator).
  void elementwise_map1(std::size_t n) const {
    const double mul = plan_.map_mul;
    const double add = plan_.map_add;
    const double* xp = t_prev_.data();
    const double* yp = y_.data();
    double* tp = t_cur_.data();
#ifdef _OPENMP
#pragma omp parallel for simd schedule(static) if (n >= kSpectralParallelDim)
#else
    FNE_PRAGMA_SIMD
#endif
    for (std::size_t i = 0; i < n; ++i) tp[i] = mul * yp[i] + add * xp[i];
  }

  // y = 2·(map_mul·(L t_cur) + map_add·t_cur) − t_prev, overwriting the
  // base-apply output in place; the caller's swaps advance the recurrence.
  void elementwise_step(std::size_t n) const {
    const double mul = plan_.map_mul;
    const double add = plan_.map_add;
    const double* tc = t_cur_.data();
    const double* tp = t_prev_.data();
    double* yp = y_.data();
#ifdef _OPENMP
#pragma omp parallel for simd schedule(static) if (n >= kSpectralParallelDim)
#else
    FNE_PRAGMA_SIMD
#endif
    for (std::size_t i = 0; i < n; ++i) yp[i] = 2.0 * (mul * yp[i] + add * tc[i]) - tp[i];
  }

  const LinearOperator* base_;
  FilterPlan plan_;
  mutable std::vector<double> t_prev_, t_cur_, y_;
};

/// y = −(L − σI)^{-1} x via conjugate gradients restricted to the deflated
/// subspace.  The RHS and every residual are projected against the
/// deflation span, so with σ = 0 and a PSD operator whose kernel is
/// deflated (the Fiedler case) the system CG actually sees is positive
/// definite.  Non-positive curvature breaks the loop deterministically —
/// the current iterate is still a fixed function of the inputs.
class ShiftInvertSurrogate {
 public:
  ShiftInvertSurrogate(const LinearOperator& base, const std::vector<std::vector<double>>& defl,
                       double shift, double tolerance, int max_iterations)
      : base_(&base),
        defl_(&defl),
        shift_(shift),
        tolerance_(tolerance),
        max_iterations_(max_iterations) {}

  void apply(const std::vector<double>& b, std::vector<double>& out) const {
    const std::size_t n = b.size();
    r_ = b;
    orthogonalize(*defl_, defl_->size(), r_, coeff_);
    x_.assign(n, 0.0);
    const double nb = norm(r_);
    out.resize(n);
    if (!(nb > 0.0)) {
      std::fill(out.begin(), out.end(), 0.0);
      return;
    }
    p_ = r_;
    ap_.resize(n);
    double rs = nb * nb;
    for (int it = 0; it < max_iterations_; ++it) {
      (*base_)(p_, ap_);
      if (shift_ != 0.0) axpy(-shift_, p_, ap_);
      const double pap = dot(p_, ap_);
      if (!(pap > 0.0)) break;  // curvature lost (kernel direction / rounding)
      const double a = rs / pap;
      axpy(a, p_, x_);
      axpy(-a, ap_, r_);
      orthogonalize(*defl_, defl_->size(), r_, coeff_);
      const double rs_new = dot(r_, r_);
      if (std::sqrt(rs_new) <= tolerance_ * nb) break;
      const double beta = rs_new / rs;
      double* pp = p_.data();
      const double* rp = r_.data();
#ifdef _OPENMP
#pragma omp parallel for simd schedule(static) if (n >= kSpectralParallelDim)
#else
      FNE_PRAGMA_SIMD
#endif
      for (std::size_t i = 0; i < n; ++i) pp[i] = rp[i] + beta * pp[i];
      rs = rs_new;
    }
    const double* xp = x_.data();
    double* op = out.data();
#ifdef _OPENMP
#pragma omp parallel for simd schedule(static) if (n >= kSpectralParallelDim)
#else
    FNE_PRAGMA_SIMD
#endif
    for (std::size_t i = 0; i < n; ++i) op[i] = -xp[i];
  }

 private:
  const LinearOperator* base_;
  const std::vector<std::vector<double>>* defl_;
  double shift_;
  double tolerance_;
  int max_iterations_;
  mutable std::vector<double> r_, p_, ap_, x_, coeff_;
};

// ---------------------------------------------------------------------------
// Transformed-mode convergence: surrogate Ritz pairs are only a basis
// selection device.  Eigenvalues are recovered by Rayleigh quotient against
// the ORIGINAL operator and convergence is the true residual ‖Lx − ρx‖ ≤
// tolerance, so a converged result means the same thing in every mode.
// ---------------------------------------------------------------------------

struct TransformedCandidates {
  std::vector<std::vector<double>> vectors;  ///< unit candidates, ascending by ρ
  std::vector<double> values;                ///< matching Rayleigh quotients
  bool all_converged = true;
};

/// Assemble the `want` smallest surrogate Ritz vectors from basis[0..m)
/// (z is the row-major m×ld eigenvector matrix, column e = pair e), then
/// Rayleigh-quotient and residual-test each against the base operator.
TransformedCandidates rayleigh_candidates(const LinearOperator& base_op,
                                          const std::vector<std::vector<double>>& basis,
                                          std::size_t m, const std::vector<double>& z,
                                          std::size_t ld, int want, double tolerance,
                                          std::size_t n) {
  TransformedCandidates out;
  std::vector<double> tmp(n);
  std::vector<std::pair<double, int>> order;
  std::vector<std::vector<double>> vecs;
  for (int e = 0; e < want; ++e) {
    std::vector<double> vec(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      axpy(z[i * ld + static_cast<std::size_t>(e)], basis[i], vec);
    }
    const double nv = norm(vec);
    if (nv > 0.0) {
      for (auto& x : vec) x /= nv;
    }
    base_op(vec, tmp);
    const double rho = dot(vec, tmp);
    axpy(-rho, vec, tmp);
    if (norm(tmp) > tolerance) out.all_converged = false;
    order.emplace_back(rho, e);
    vecs.push_back(std::move(vec));
  }
  // The surrogate ordering need not match the base ordering exactly (the
  // filter is only monotone below the cut); sort by ρ, index-stable.
  std::stable_sort(order.begin(), order.end());
  for (const auto& [rho, e] : order) {
    out.values.push_back(rho);
    out.vectors.push_back(std::move(vecs[static_cast<std::size_t>(e)]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rank-1 bodies.  rank1_plain is the pre-PR-6 solver, bit for bit; the
// transformed body shares its recurrence but iterates the surrogate and
// decides convergence through rayleigh_candidates.
// ---------------------------------------------------------------------------

LanczosResult rank1_plain(const LinearOperator& op, std::size_t n,
                          const std::vector<std::vector<double>>& defl, std::size_t usable,
                          const LanczosOptions& options) {
  LanczosResult result;
  const int max_iter =
      static_cast<int>(std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_iterations)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;  // Lanczos vectors q_1..q_j
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };
  std::vector<double> alpha;
  std::vector<double> beta;

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);
  bool warm = options.initial != nullptr && options.initial->size() == n;
  if (warm) {
    q = *options.initial;
  } else {
    for (auto& x : q) x = rng.uniform01() - 0.5;
  }
  orthogonalize(defl, defl.size(), q, coeff);
  {
    double nq = norm(q);
    if (warm && !(nq > 1e-12)) {
      // Degenerate warm start (e.g. orthogonal remnant): seeded random fallback.
      for (auto& x : q) x = rng.uniform01() - 0.5;
      orthogonalize(defl, defl.size(), q, coeff);
      nq = norm(q);
    }
    FNE_REQUIRE(nq > 0.0, "degenerate start vector");
    for (auto& x : q) x /= nq;
  }
  push_basis(q);

  std::vector<double>& w = scratch.w;
  w.resize(n);
  for (int j = 0; j < max_iter; ++j) {
    op(basis[basis_count - 1], w);
    const double a = dot(basis[basis_count - 1], w);
    alpha.push_back(a);
    // w -= a*q_j + b_{j-1}*q_{j-1}; then full reorthogonalization.
    axpy(-a, basis[basis_count - 1], w);
    if (j > 0) axpy(-beta.back(), basis[basis_count - 2], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    double b = norm(w);
    if (b < kDgks * before) {
      orthogonalize(basis, basis_count, w, coeff);
      b = norm(w);
    }
    // Convergence check every few steps (or on breakdown).
    const bool last = (j + 1 == max_iter) || b < 1e-13;
    if (last || (j + 1) % 10 == 0) {
      std::vector<double> values;
      std::vector<double> z;
      tridiag_eigen(alpha, beta, values, &z);
      const std::size_t k = alpha.size();
      const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(k));
      bool all_converged = true;
      for (int e = 0; e < want; ++e) {
        const double resid = std::fabs(b * z[(k - 1) * k + static_cast<std::size_t>(e)]);
        if (resid > options.tolerance) {
          all_converged = false;
          break;
        }
      }
      if (all_converged || last) {
        result.iterations = j + 1;
        result.converged = all_converged || b < 1e-13;
        result.values.assign(values.begin(), values.begin() + want);
        result.vectors.assign(static_cast<std::size_t>(want), std::vector<double>(n, 0.0));
        for (int e = 0; e < want; ++e) {
          auto& vec = result.vectors[static_cast<std::size_t>(e)];
          for (std::size_t i = 0; i < k; ++i) {
            axpy(z[i * k + static_cast<std::size_t>(e)], basis[i], vec);
          }
          const double nv = norm(vec);
          if (nv > 0.0) {
            for (auto& x : vec) x /= nv;
          }
        }
        return result;
      }
    }
    if (b < 1e-13) break;  // invariant subspace exhausted
    beta.push_back(b);
    for (auto& x : w) x /= b;
    push_basis(w);
  }

  // max_iter loop exited without returning (shouldn't happen); mark failure.
  result.converged = false;
  return result;
}

LanczosResult rank1_transformed(const LinearOperator& base_op, const LinearOperator& sur_op,
                                std::size_t n, const std::vector<std::vector<double>>& defl,
                                std::size_t usable, const LanczosOptions& options,
                                const std::vector<double>* warm_start) {
  LanczosResult result;
  const int max_iter =
      static_cast<int>(std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_iterations)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };
  std::vector<double> alpha;
  std::vector<double> beta;

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);
  bool warm = warm_start != nullptr && warm_start->size() == n;
  if (warm) {
    q = *warm_start;
  } else {
    for (auto& x : q) x = rng.uniform01() - 0.5;
  }
  orthogonalize(defl, defl.size(), q, coeff);
  {
    double nq = norm(q);
    if (warm && !(nq > 1e-12)) {
      for (auto& x : q) x = rng.uniform01() - 0.5;
      orthogonalize(defl, defl.size(), q, coeff);
      nq = norm(q);
    }
    FNE_REQUIRE(nq > 0.0, "degenerate start vector");
    for (auto& x : q) x /= nq;
  }
  push_basis(q);

  std::vector<double>& w = scratch.w;
  w.resize(n);
  for (int j = 0; j < max_iter; ++j) {
    sur_op(basis[basis_count - 1], w);
    const double a = dot(basis[basis_count - 1], w);
    alpha.push_back(a);
    axpy(-a, basis[basis_count - 1], w);
    if (j > 0) axpy(-beta.back(), basis[basis_count - 2], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    double b = norm(w);
    if (b < kDgks * before) {
      orthogonalize(basis, basis_count, w, coeff);
      b = norm(w);
    }
    const bool last = (j + 1 == max_iter) || b < 1e-13;
    if (last || (j + 1) % 10 == 0) {
      std::vector<double> values;
      std::vector<double> z;
      tridiag_eigen(alpha, beta, values, &z);  // Ritz pairs of the SURROGATE
      const std::size_t k = alpha.size();
      const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(k));
      TransformedCandidates cands =
          rayleigh_candidates(base_op, basis, k, z, k, want, options.tolerance, n);
      if (cands.all_converged || last) {
        result.iterations = j + 1;
        result.converged = cands.all_converged;
        result.values = std::move(cands.values);
        result.vectors = std::move(cands.vectors);
        return result;
      }
    }
    if (b < 1e-13) break;
    beta.push_back(b);
    for (auto& x : w) x /= b;
    push_basis(w);
  }

  result.converged = false;
  return result;
}

// ---------------------------------------------------------------------------
// Blocked bodies.  block_plain is the pre-PR-6 solver; the transformed body
// shares its basis build (CGS2+DGKS, T assembly, geometric check cadence)
// but iterates the surrogate, may seed the start block from probe Ritz
// vectors, and replaces the coupling-row residual bound with the direct
// base-operator residual of rayleigh_candidates (the T rows describe the
// surrogate, whose residual scale has no relation to the base tolerance).
// ---------------------------------------------------------------------------

LanczosResult block_plain(const LinearOperator& op, std::size_t n,
                          const std::vector<std::vector<double>>& defl, std::size_t usable,
                          const BlockLanczosOptions& options) {
  LanczosResult result;
  const std::size_t max_basis =
      std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_basis));
  const std::size_t block = std::min<std::size_t>(
      max_basis,
      static_cast<std::size_t>(options.block_size > 0
                                   ? options.block_size
                                   : std::min(options.num_eigenpairs, 2)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };

  // Projected matrix T = Qᵀ A Q, stored dense row-major with leading
  // dimension max_basis.  Column j is filled from the FIRST CGS pass of
  // column j's reorthogonalization (coeff = Qᵀ(A q_j) before any
  // subtraction), so Rayleigh–Ritz costs no extra dots; the β coupling to
  // the remainder vector is patched in at append time.  Full
  // reorthogonalization makes rows i >= m of T the COMPLETE outside-span
  // coupling of the first m columns, which is what the residual bound
  // below reads.  (The DGKS second pass subtracts O(ε)-level corrections
  // that are not folded back into T — standard, and far below tolerance.)
  std::vector<double> tmat(max_basis * max_basis, 0.0);

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);

  // Seed one deflation- and basis-orthonormal random vector; a few
  // redraws tolerate unlucky draws, then the orthogonal complement is
  // treated as numerically exhausted.
  const auto seed_vector = [&]() -> bool {
    for (int attempt = 0; attempt < 4; ++attempt) {
      for (auto& x : q) x = rng.uniform01() - 0.5;
      orthogonalize(defl, defl.size(), q, coeff);
      const double before = norm(q);
      orthogonalize(basis, basis_count, q, coeff);
      if (norm(q) < kDgks * before) orthogonalize(basis, basis_count, q, coeff);
      orthogonalize(defl, defl.size(), q, coeff);
      const double nq = norm(q);  // post-sweep: the stale norm would
                                  // normalize deflation noise into the basis
      if (nq > 1e-10) {
        for (auto& x : q) x /= nq;
        push_basis(q);
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < block; ++i) {
    if (!seed_vector()) break;
  }
  FNE_REQUIRE(basis_count > 0, "degenerate start block");

  std::vector<double>& w = scratch.w;
  w.resize(n);
  std::vector<double> tcol;
  std::vector<double> ritz_values;
  std::vector<double> ritz_vectors;
  std::vector<double> projected;
  // Remainder norms of columns whose orthogonalized remainder was NOT
  // appended (basis cap reached).  Their coupling is invisible to the
  // stored T rows, so the residual bound must re-add it — without this a
  // capped solve would read empty coupling rows as "exactly converged".
  std::vector<double> dropped(max_basis, 0.0);

  // Rayleigh–Ritz cadence: first after one block, then geometrically
  // (~1.5x), so the dense O(m³) Householder+QL solves stay subdominant
  // to the O(m²·n) reorthogonalization stream.
  std::size_t processed = 0;
  std::size_t next_check = block;

  while (processed < basis_count) {
    const std::size_t j = processed;
    op(basis[j], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    tcol.assign(coeff.begin(), coeff.begin() + static_cast<std::ptrdiff_t>(basis_count));
    if (norm(w) < kDgks * before) orthogonalize(basis, basis_count, w, coeff);
    // Final deflation sweep, then the norm is measured POST-sweep: the
    // basis passes leave an O(ε) deflation residue, and near exhaustion
    // that residue can dominate the true remainder — normalizing by a
    // pre-sweep norm would push a near-zero vector into the basis, which
    // surfaces as ghost copies of the deflated eigenvalues.
    orthogonalize(defl, defl.size(), w, coeff);
    const double bnorm = norm(w);
    for (std::size_t i = 0; i < basis_count; ++i) {
      tmat[i * max_basis + j] = tcol[i];
      tmat[j * max_basis + i] = tcol[i];
    }
    ++processed;
    if (bnorm > 1e-13 && basis_count < max_basis) {
      for (auto& x : w) x /= bnorm;
      tmat[basis_count * max_basis + j] = bnorm;
      tmat[j * max_basis + basis_count] = bnorm;
      push_basis(w);
    } else {
      // This Krylov direction is exhausted (bnorm ~ 0) or the cap is
      // reached; the band narrows and the loop drains the remaining
      // columns.  The un-appended remainder still couples A Q_m out of
      // the basis — charge it to the residual bound below.
      dropped[j] = bnorm;
    }

    const bool no_more = processed == basis_count;
    if (processed < next_check && !no_more) continue;
    next_check = processed + std::max(block, processed / 2);

    const std::size_t m = processed;
    const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(m));
    projected.assign(m * m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) projected[r * m + c] = tmat[r * max_basis + c];
    }
    sym_eigen(projected, m, ritz_values, &ritz_vectors);

    // Residual of Ritz pair (θ_e, y_e): A Q_m y - θ Q_m y lies in
    // span{q_m..q_{basis_count-1}} ∪ {un-appended remainders} (full
    // reorthogonalization leaves nothing else).  The basis part has
    // coefficient (T[i][0..m) · y_e) on q_i — stored above; the dropped
    // remainders are bounded by the triangle inequality.  When the
    // deflated space itself is exhausted both parts vanish and the Ritz
    // values are exact, so the zero residual is the truth.
    bool all_converged = true;
    for (int e = 0; e < want && all_converged; ++e) {
      double r2 = 0.0;
      for (std::size_t i = m; i < basis_count; ++i) {
        double s = 0.0;
        for (std::size_t c = 0; c < m; ++c) {
          s += tmat[i * max_basis + c] * ritz_vectors[c * m + static_cast<std::size_t>(e)];
        }
        r2 += s * s;
      }
      double resid = std::sqrt(r2);
      for (std::size_t c = 0; c < m; ++c) {
        if (dropped[c] > 0.0) {
          resid += dropped[c] * std::fabs(ritz_vectors[c * m + static_cast<std::size_t>(e)]);
        }
      }
      if (resid > options.tolerance) all_converged = false;
    }
    if (!all_converged && !no_more) continue;

    result.iterations = static_cast<int>(m);
    result.converged = all_converged;
    result.values.assign(ritz_values.begin(), ritz_values.begin() + want);
    result.vectors.assign(static_cast<std::size_t>(want), std::vector<double>(n, 0.0));
    for (int e = 0; e < want; ++e) {
      auto& vec = result.vectors[static_cast<std::size_t>(e)];
      for (std::size_t i = 0; i < m; ++i) {
        axpy(ritz_vectors[i * m + static_cast<std::size_t>(e)], basis[i], vec);
      }
      const double nv = norm(vec);
      if (nv > 0.0) {
        for (auto& x : vec) x /= nv;
      }
    }
    return result;
  }

  // Unreachable: the drain loop always returns at no_more.
  result.converged = false;
  return result;
}

LanczosResult block_transformed(const LinearOperator& base_op, const LinearOperator& sur_op,
                                std::size_t n, const std::vector<std::vector<double>>& defl,
                                std::size_t usable, const BlockLanczosOptions& options,
                                const std::vector<std::vector<double>>* warm_starts) {
  LanczosResult result;
  const std::size_t max_basis =
      std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_basis));
  const std::size_t block = std::min<std::size_t>(
      max_basis,
      static_cast<std::size_t>(options.block_size > 0
                                   ? options.block_size
                                   : std::min(options.num_eigenpairs, 2)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };

  std::vector<double> tmat(max_basis * max_basis, 0.0);

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);

  // Orthonormalize the current q against deflation and the basis so far;
  // push it if anything survives.  Shared by warm and random seeding.
  const auto try_push_seed = [&]() -> bool {
    orthogonalize(defl, defl.size(), q, coeff);
    const double before = norm(q);
    orthogonalize(basis, basis_count, q, coeff);
    if (norm(q) < kDgks * before) orthogonalize(basis, basis_count, q, coeff);
    orthogonalize(defl, defl.size(), q, coeff);
    const double nq = norm(q);
    if (!(nq > 1e-10)) return false;
    for (auto& x : q) x /= nq;
    push_basis(q);
    return true;
  };
  const auto seed_vector = [&]() -> bool {
    for (int attempt = 0; attempt < 4; ++attempt) {
      for (auto& x : q) x = rng.uniform01() - 0.5;
      if (try_push_seed()) return true;
    }
    return false;
  };
  // Probe Ritz vectors already approximate the wanted invariant subspace —
  // seeding the block with them lets the surrogate refine instead of
  // rediscovering.  Degenerate warm vectors are simply skipped.
  if (warm_starts != nullptr) {
    for (const auto& ws : *warm_starts) {
      if (basis_count >= block) break;
      if (ws.size() != n) continue;
      q = ws;
      try_push_seed();
    }
  }
  for (std::size_t i = basis_count; i < block; ++i) {
    if (!seed_vector()) break;
  }
  FNE_REQUIRE(basis_count > 0, "degenerate start block");

  std::vector<double>& w = scratch.w;
  w.resize(n);
  std::vector<double> tcol;
  std::vector<double> ritz_values;
  std::vector<double> ritz_vectors;
  std::vector<double> projected;

  std::size_t processed = 0;
  std::size_t next_check = block;

  while (processed < basis_count) {
    const std::size_t j = processed;
    sur_op(basis[j], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    tcol.assign(coeff.begin(), coeff.begin() + static_cast<std::ptrdiff_t>(basis_count));
    if (norm(w) < kDgks * before) orthogonalize(basis, basis_count, w, coeff);
    orthogonalize(defl, defl.size(), w, coeff);
    const double bnorm = norm(w);
    for (std::size_t i = 0; i < basis_count; ++i) {
      tmat[i * max_basis + j] = tcol[i];
      tmat[j * max_basis + i] = tcol[i];
    }
    ++processed;
    if (bnorm > 1e-13 && basis_count < max_basis) {
      for (auto& x : w) x /= bnorm;
      tmat[basis_count * max_basis + j] = bnorm;
      tmat[j * max_basis + basis_count] = bnorm;
      push_basis(w);
    }

    const bool no_more = processed == basis_count;
    if (processed < next_check && !no_more) continue;
    next_check = processed + std::max(block, processed / 2);

    const std::size_t m = processed;
    const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(m));
    projected.assign(m * m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) projected[r * m + c] = tmat[r * max_basis + c];
    }
    sym_eigen(projected, m, ritz_values, &ritz_vectors);

    TransformedCandidates cands =
        rayleigh_candidates(base_op, basis, m, ritz_vectors, m, want, options.tolerance, n);
    if (!cands.all_converged && !no_more) continue;

    result.iterations = static_cast<int>(m);
    result.converged = cands.all_converged;
    result.values = std::move(cands.values);
    result.vectors = std::move(cands.vectors);
    return result;
  }

  result.converged = false;
  return result;
}

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                               const std::vector<std::vector<double>>& deflation,
                               const LanczosOptions& options) {
  FNE_REQUIRE(n >= 1, "empty operator");
  FNE_REQUIRE(options.num_eigenpairs >= 1, "need at least one eigenpair");

  std::vector<std::vector<double>> defl = normalize_deflation(deflation);
  const std::size_t usable =
      n > defl.size() ? n - defl.size() : 0;  // dimension of the deflated space
  if (usable == 0) {
    LanczosResult result;
    result.converged = true;
    return result;
  }

  const SpectralMode mode = resolve_spectral_mode(options.accel, n);
  if (mode == SpectralMode::kPlain) return rank1_plain(op, n, defl, usable, options);

  if (mode == SpectralMode::kShiftInvert) {
    ShiftInvertSurrogate surrogate(op, defl, options.accel.shift, options.accel.cg_tolerance,
                                   options.accel.cg_max_iterations);
    const LinearOperator sur = [&surrogate](const std::vector<double>& x,
                                            std::vector<double>& y) { surrogate.apply(x, y); };
    return rank1_transformed(op, sur, n, defl, usable, options, options.initial);
  }

  // kFiltered: probe with the plain solver first.  Cheap spectra converge
  // inside the probe budget and return directly; otherwise the probe's
  // Ritz values place the filter cut and its vector warm-starts the
  // accelerated solve.
  FNE_REQUIRE(std::isfinite(options.accel.op_upper_bound),
              "filtered mode needs a finite accel.op_upper_bound (e.g. gershgorin_upper_bound)");
  LanczosOptions probe_opts = options;
  probe_opts.max_iterations = std::min(options.max_iterations, kFilterProbeIterations);
  LanczosResult probe = rank1_plain(op, n, defl, usable, probe_opts);
  if (probe.converged) return probe;

  const FilterPlan plan = plan_filter(probe.values, options.num_eigenpairs,
                                      options.accel.filter_degree, options.accel.op_upper_bound);
  if (!plan.usable) return rank1_plain(op, n, defl, usable, options);

  ChebyshevSurrogate surrogate(op, plan);
  const LinearOperator sur = [&surrogate](const std::vector<double>& x,
                                          std::vector<double>& y) { surrogate.apply(x, y); };
  const std::vector<double>* warm =
      !probe.vectors.empty() ? &probe.vectors.front() : options.initial;
  LanczosResult result = rank1_transformed(op, sur, n, defl, usable, options, warm);
  result.iterations += probe.iterations;
  return result;
}

LanczosResult lanczos_smallest_block(const LinearOperator& op, std::size_t n,
                                     const std::vector<std::vector<double>>& deflation,
                                     const BlockLanczosOptions& options) {
  FNE_REQUIRE(n >= 1, "empty operator");
  FNE_REQUIRE(options.num_eigenpairs >= 1, "need at least one eigenpair");
  FNE_REQUIRE(options.max_basis >= options.num_eigenpairs,
              "max_basis must cover the wanted eigenpairs");

  std::vector<std::vector<double>> defl = normalize_deflation(deflation);
  const std::size_t usable = n > defl.size() ? n - defl.size() : 0;
  if (usable == 0) {
    LanczosResult result;
    result.converged = true;
    return result;
  }

  const SpectralMode mode = resolve_spectral_mode(options.accel, n);
  if (mode == SpectralMode::kPlain) return block_plain(op, n, defl, usable, options);

  if (mode == SpectralMode::kShiftInvert) {
    ShiftInvertSurrogate surrogate(op, defl, options.accel.shift, options.accel.cg_tolerance,
                                   options.accel.cg_max_iterations);
    const LinearOperator sur = [&surrogate](const std::vector<double>& x,
                                            std::vector<double>& y) { surrogate.apply(x, y); };
    return block_transformed(op, sur, n, defl, usable, options, nullptr);
  }

  FNE_REQUIRE(std::isfinite(options.accel.op_upper_bound),
              "filtered mode needs a finite accel.op_upper_bound (e.g. gershgorin_upper_bound)");
  BlockLanczosOptions probe_opts = options;
  probe_opts.max_basis = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(options.max_basis),
      std::max<std::size_t>(static_cast<std::size_t>(kFilterProbeIterations),
                            static_cast<std::size_t>(options.num_eigenpairs))));
  LanczosResult probe = block_plain(op, n, defl, usable, probe_opts);
  if (probe.converged) return probe;

  const FilterPlan plan = plan_filter(probe.values, options.num_eigenpairs,
                                      options.accel.filter_degree, options.accel.op_upper_bound);
  if (!plan.usable) return block_plain(op, n, defl, usable, options);

  ChebyshevSurrogate surrogate(op, plan);
  const LinearOperator sur = [&surrogate](const std::vector<double>& x,
                                          std::vector<double>& y) { surrogate.apply(x, y); };
  LanczosResult result =
      block_transformed(op, sur, n, defl, usable, options, &probe.vectors);
  result.iterations += probe.iterations;
  return result;
}

}  // namespace fne
