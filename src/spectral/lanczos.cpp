#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "spectral/operator.hpp"  // kSpectralParallelDim
#include "spectral/tridiag.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

namespace {

/// Fixed reduction granularity for dot products.  Every dot — serial or
/// parallel — sums each 1024-element chunk first and folds the chunk
/// partials in index order, so the floating-point result is one specific
/// value per input, not one per thread count (DESIGN.md §7).
constexpr std::size_t kDotChunk = 1024;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const std::size_t chunks = (n + kDotChunk - 1) / kDotChunk;
#ifdef _OPENMP
  if (n >= kSpectralParallelDim) {
    // One shared partials buffer per call (NOT thread_local: inside the
    // parallel region that would resolve to each worker's own instance).
    std::vector<double> partials(chunks, 0.0);
#pragma omp parallel for schedule(static)
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t end = std::min(n, (c + 1) * kDotChunk);
      double s = 0.0;
      for (std::size_t i = c * kDotChunk; i < end; ++i) s += a[i] * b[i];
      partials[c] = s;
    }
    double total = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) total += partials[c];
    return total;
  }
#endif
  double total = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = std::min(n, (c + 1) * kDotChunk);
    double s = 0.0;
    for (std::size_t i = c * kDotChunk; i < end; ++i) s += a[i] * b[i];
    total += s;
  }
  return total;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  const std::size_t n = x.size();
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (n >= kSpectralParallelDim)
#endif
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x -= Σ_i <b_i, x> b_i over basis[0..count), classical Gram–Schmidt:
/// all coefficients against the incoming x first, then one fused blocked
/// rank-`count` update.  Two calls per Krylov step (CGS2) match the
/// stability of the old two-pass modified Gram–Schmidt while streaming
/// every basis vector exactly once per pass and exposing both loops to
/// OpenMP.  Deterministic for any thread count: each coefficient is a
/// chunked dot, and each element of x subtracts its contributions in
/// basis order within its block.
void orthogonalize(const std::vector<std::vector<double>>& basis, std::size_t count,
                   std::vector<double>& x, std::vector<double>& coeff) {
  if (count == 0) return;
  coeff.resize(count);
  for (std::size_t i = 0; i < count; ++i) coeff[i] = dot(basis[i], x);
  const std::size_t n = x.size();
  const std::size_t blocks = (n + kDotChunk - 1) / kDotChunk;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (n >= kSpectralParallelDim)
#endif
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t lo = blk * kDotChunk;
    const std::size_t hi = std::min(n, lo + kDotChunk);
    for (std::size_t i = 0; i < count; ++i) {
      const double c = coeff[i];
      const double* bi = basis[i].data();
      for (std::size_t e = lo; e < hi; ++e) x[e] -= c * bi[e];
    }
  }
}

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                               const std::vector<std::vector<double>>& deflation,
                               const LanczosOptions& options) {
  FNE_REQUIRE(n >= 1, "empty operator");
  FNE_REQUIRE(options.num_eigenpairs >= 1, "need at least one eigenpair");
  LanczosResult result;

  // Normalize deflation vectors.
  std::vector<std::vector<double>> defl = deflation;
  for (auto& b : defl) {
    const double nb = norm(b);
    FNE_REQUIRE(nb > 0.0, "zero deflation vector");
    for (auto& x : b) x /= nb;
  }
  const std::size_t usable =
      n > defl.size() ? n - defl.size() : 0;  // dimension of the deflated space
  if (usable == 0) {
    result.converged = true;
    return result;
  }

  const int max_iter =
      static_cast<int>(std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_iterations)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;  // Lanczos vectors q_1..q_j
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };
  std::vector<double> alpha;
  std::vector<double> beta;

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);
  bool warm = options.initial != nullptr && options.initial->size() == n;
  if (warm) {
    q = *options.initial;
  } else {
    for (auto& x : q) x = rng.uniform01() - 0.5;
  }
  orthogonalize(defl, defl.size(), q, coeff);
  {
    double nq = norm(q);
    if (warm && !(nq > 1e-12)) {
      // Degenerate warm start (e.g. orthogonal remnant): seeded random fallback.
      for (auto& x : q) x = rng.uniform01() - 0.5;
      orthogonalize(defl, defl.size(), q, coeff);
      nq = norm(q);
    }
    FNE_REQUIRE(nq > 0.0, "degenerate start vector");
    for (auto& x : q) x /= nq;
  }
  push_basis(q);

  std::vector<double>& w = scratch.w;
  w.resize(n);
  // DGKS criterion: after one full Gram–Schmidt pass, re-orthogonalize
  // again only when the pass removed a large fraction of w (norm dropped
  // below 1/√2 of the pre-pass norm), i.e. when cancellation may have
  // left O(ε·‖w_before‖) residue in the basis span.  The decision is a
  // pure function of the computed norms, so determinism is unaffected; in
  // the common well-conditioned iteration it halves the dominant
  // reorthogonalization FLOPs.
  constexpr double kDgks = 0.70710678118654752;
  for (int j = 0; j < max_iter; ++j) {
    op(basis[basis_count - 1], w);
    const double a = dot(basis[basis_count - 1], w);
    alpha.push_back(a);
    // w -= a*q_j + b_{j-1}*q_{j-1}; then full reorthogonalization.
    axpy(-a, basis[basis_count - 1], w);
    if (j > 0) axpy(-beta.back(), basis[basis_count - 2], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    double b = norm(w);
    if (b < kDgks * before) {
      orthogonalize(basis, basis_count, w, coeff);
      b = norm(w);
    }
    // Convergence check every few steps (or on breakdown).
    const bool last = (j + 1 == max_iter) || b < 1e-13;
    if (last || (j + 1) % 10 == 0) {
      std::vector<double> values;
      std::vector<double> z;
      tridiag_eigen(alpha, beta, values, &z);
      const std::size_t k = alpha.size();
      const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(k));
      bool all_converged = true;
      for (int e = 0; e < want; ++e) {
        const double resid = std::fabs(b * z[(k - 1) * k + static_cast<std::size_t>(e)]);
        if (resid > options.tolerance) {
          all_converged = false;
          break;
        }
      }
      if (all_converged || last) {
        result.iterations = j + 1;
        result.converged = all_converged || b < 1e-13;
        result.values.assign(values.begin(), values.begin() + want);
        result.vectors.assign(static_cast<std::size_t>(want), std::vector<double>(n, 0.0));
        for (int e = 0; e < want; ++e) {
          auto& vec = result.vectors[static_cast<std::size_t>(e)];
          for (std::size_t i = 0; i < k; ++i) {
            axpy(z[i * k + static_cast<std::size_t>(e)], basis[i], vec);
          }
          const double nv = norm(vec);
          if (nv > 0.0) {
            for (auto& x : vec) x /= nv;
          }
        }
        return result;
      }
    }
    if (b < 1e-13) break;  // invariant subspace exhausted
    beta.push_back(b);
    for (auto& x : w) x /= b;
    push_basis(w);
  }

  // max_iter loop exited without returning (shouldn't happen); mark failure.
  result.converged = false;
  return result;
}

}  // namespace fne
