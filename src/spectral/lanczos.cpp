#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "spectral/operator.hpp"  // kSpectralParallelDim
#include "spectral/tridiag.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

namespace {

/// Fixed reduction granularity for dot products.  Every dot — serial or
/// parallel — sums each 1024-element chunk first and folds the chunk
/// partials in index order, so the floating-point result is one specific
/// value per input, not one per thread count (DESIGN.md §7).
constexpr std::size_t kDotChunk = 1024;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const std::size_t chunks = (n + kDotChunk - 1) / kDotChunk;
#ifdef _OPENMP
  if (n >= kSpectralParallelDim) {
    // One shared partials buffer per call (NOT thread_local: inside the
    // parallel region that would resolve to each worker's own instance).
    std::vector<double> partials(chunks, 0.0);
#pragma omp parallel for schedule(static)
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t end = std::min(n, (c + 1) * kDotChunk);
      double s = 0.0;
      for (std::size_t i = c * kDotChunk; i < end; ++i) s += a[i] * b[i];
      partials[c] = s;
    }
    double total = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) total += partials[c];
    return total;
  }
#endif
  double total = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = std::min(n, (c + 1) * kDotChunk);
    double s = 0.0;
    for (std::size_t i = c * kDotChunk; i < end; ++i) s += a[i] * b[i];
    total += s;
  }
  return total;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  const std::size_t n = x.size();
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (n >= kSpectralParallelDim)
#endif
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// x -= Σ_i <b_i, x> b_i over basis[0..count), classical Gram–Schmidt:
/// all coefficients against the incoming x first, then one fused blocked
/// rank-`count` update.  Two calls per Krylov step (CGS2) match the
/// stability of the old two-pass modified Gram–Schmidt while streaming
/// every basis vector exactly once per pass and exposing both loops to
/// OpenMP.  Deterministic for any thread count: each coefficient is a
/// chunked dot, and each element of x subtracts its contributions in
/// basis order within its block.
void orthogonalize(const std::vector<std::vector<double>>& basis, std::size_t count,
                   std::vector<double>& x, std::vector<double>& coeff) {
  if (count == 0) return;
  coeff.resize(count);
  for (std::size_t i = 0; i < count; ++i) coeff[i] = dot(basis[i], x);
  const std::size_t n = x.size();
  const std::size_t blocks = (n + kDotChunk - 1) / kDotChunk;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (n >= kSpectralParallelDim)
#endif
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t lo = blk * kDotChunk;
    const std::size_t hi = std::min(n, lo + kDotChunk);
    for (std::size_t i = 0; i < count; ++i) {
      const double c = coeff[i];
      const double* bi = basis[i].data();
      for (std::size_t e = lo; e < hi; ++e) x[e] -= c * bi[e];
    }
  }
}

/// DGKS criterion: after one full Gram–Schmidt pass, re-orthogonalize
/// again only when the pass removed a large fraction of the vector (norm
/// dropped below 1/√2 of the pre-pass norm), i.e. when cancellation may
/// have left O(ε·‖before‖) residue in the basis span.  The decision is a
/// pure function of the computed norms, so determinism is unaffected.
constexpr double kDgks = 0.70710678118654752;

}  // namespace

LanczosResult lanczos_smallest(const LinearOperator& op, std::size_t n,
                               const std::vector<std::vector<double>>& deflation,
                               const LanczosOptions& options) {
  FNE_REQUIRE(n >= 1, "empty operator");
  FNE_REQUIRE(options.num_eigenpairs >= 1, "need at least one eigenpair");
  LanczosResult result;

  // Normalize deflation vectors.
  std::vector<std::vector<double>> defl = deflation;
  for (auto& b : defl) {
    const double nb = norm(b);
    FNE_REQUIRE(nb > 0.0, "zero deflation vector");
    for (auto& x : b) x /= nb;
  }
  const std::size_t usable =
      n > defl.size() ? n - defl.size() : 0;  // dimension of the deflated space
  if (usable == 0) {
    result.converged = true;
    return result;
  }

  const int max_iter =
      static_cast<int>(std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_iterations)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;  // Lanczos vectors q_1..q_j
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };
  std::vector<double> alpha;
  std::vector<double> beta;

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);
  bool warm = options.initial != nullptr && options.initial->size() == n;
  if (warm) {
    q = *options.initial;
  } else {
    for (auto& x : q) x = rng.uniform01() - 0.5;
  }
  orthogonalize(defl, defl.size(), q, coeff);
  {
    double nq = norm(q);
    if (warm && !(nq > 1e-12)) {
      // Degenerate warm start (e.g. orthogonal remnant): seeded random fallback.
      for (auto& x : q) x = rng.uniform01() - 0.5;
      orthogonalize(defl, defl.size(), q, coeff);
      nq = norm(q);
    }
    FNE_REQUIRE(nq > 0.0, "degenerate start vector");
    for (auto& x : q) x /= nq;
  }
  push_basis(q);

  std::vector<double>& w = scratch.w;
  w.resize(n);
  for (int j = 0; j < max_iter; ++j) {
    op(basis[basis_count - 1], w);
    const double a = dot(basis[basis_count - 1], w);
    alpha.push_back(a);
    // w -= a*q_j + b_{j-1}*q_{j-1}; then full reorthogonalization.
    axpy(-a, basis[basis_count - 1], w);
    if (j > 0) axpy(-beta.back(), basis[basis_count - 2], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    double b = norm(w);
    if (b < kDgks * before) {
      orthogonalize(basis, basis_count, w, coeff);
      b = norm(w);
    }
    // Convergence check every few steps (or on breakdown).
    const bool last = (j + 1 == max_iter) || b < 1e-13;
    if (last || (j + 1) % 10 == 0) {
      std::vector<double> values;
      std::vector<double> z;
      tridiag_eigen(alpha, beta, values, &z);
      const std::size_t k = alpha.size();
      const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(k));
      bool all_converged = true;
      for (int e = 0; e < want; ++e) {
        const double resid = std::fabs(b * z[(k - 1) * k + static_cast<std::size_t>(e)]);
        if (resid > options.tolerance) {
          all_converged = false;
          break;
        }
      }
      if (all_converged || last) {
        result.iterations = j + 1;
        result.converged = all_converged || b < 1e-13;
        result.values.assign(values.begin(), values.begin() + want);
        result.vectors.assign(static_cast<std::size_t>(want), std::vector<double>(n, 0.0));
        for (int e = 0; e < want; ++e) {
          auto& vec = result.vectors[static_cast<std::size_t>(e)];
          for (std::size_t i = 0; i < k; ++i) {
            axpy(z[i * k + static_cast<std::size_t>(e)], basis[i], vec);
          }
          const double nv = norm(vec);
          if (nv > 0.0) {
            for (auto& x : vec) x /= nv;
          }
        }
        return result;
      }
    }
    if (b < 1e-13) break;  // invariant subspace exhausted
    beta.push_back(b);
    for (auto& x : w) x /= b;
    push_basis(w);
  }

  // max_iter loop exited without returning (shouldn't happen); mark failure.
  result.converged = false;
  return result;
}

LanczosResult lanczos_smallest_block(const LinearOperator& op, std::size_t n,
                                     const std::vector<std::vector<double>>& deflation,
                                     const BlockLanczosOptions& options) {
  FNE_REQUIRE(n >= 1, "empty operator");
  FNE_REQUIRE(options.num_eigenpairs >= 1, "need at least one eigenpair");
  FNE_REQUIRE(options.max_basis >= options.num_eigenpairs,
              "max_basis must cover the wanted eigenpairs");
  LanczosResult result;

  std::vector<std::vector<double>> defl = deflation;
  for (auto& b : defl) {
    const double nb = norm(b);
    FNE_REQUIRE(nb > 0.0, "zero deflation vector");
    for (auto& x : b) x /= nb;
  }
  const std::size_t usable = n > defl.size() ? n - defl.size() : 0;
  if (usable == 0) {
    result.converged = true;
    return result;
  }

  const std::size_t max_basis =
      std::min<std::size_t>(usable, static_cast<std::size_t>(options.max_basis));
  const std::size_t block = std::min<std::size_t>(
      max_basis,
      static_cast<std::size_t>(options.block_size > 0
                                   ? options.block_size
                                   : std::min(options.num_eigenpairs, 2)));

  LanczosScratch local_scratch;
  LanczosScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;
  std::vector<std::vector<double>>& basis = scratch.basis;
  std::vector<double>& coeff = scratch.coeff;
  std::size_t basis_count = 0;
  auto push_basis = [&](const std::vector<double>& v) {
    if (basis.size() <= basis_count) basis.emplace_back();
    basis[basis_count] = v;
    ++basis_count;
  };

  // Projected matrix T = Qᵀ A Q, stored dense row-major with leading
  // dimension max_basis.  Column j is filled from the FIRST CGS pass of
  // column j's reorthogonalization (coeff = Qᵀ(A q_j) before any
  // subtraction), so Rayleigh–Ritz costs no extra dots; the β coupling to
  // the remainder vector is patched in at append time.  Full
  // reorthogonalization makes rows i >= m of T the COMPLETE outside-span
  // coupling of the first m columns, which is what the residual bound
  // below reads.  (The DGKS second pass subtracts O(ε)-level corrections
  // that are not folded back into T — standard, and far below tolerance.)
  std::vector<double> tmat(max_basis * max_basis, 0.0);

  Rng rng(options.seed);
  std::vector<double>& q = scratch.q;
  q.resize(n);

  // Seed one deflation- and basis-orthonormal random vector; a few
  // redraws tolerate unlucky draws, then the orthogonal complement is
  // treated as numerically exhausted.
  const auto seed_vector = [&]() -> bool {
    for (int attempt = 0; attempt < 4; ++attempt) {
      for (auto& x : q) x = rng.uniform01() - 0.5;
      orthogonalize(defl, defl.size(), q, coeff);
      const double before = norm(q);
      orthogonalize(basis, basis_count, q, coeff);
      if (norm(q) < kDgks * before) orthogonalize(basis, basis_count, q, coeff);
      orthogonalize(defl, defl.size(), q, coeff);
      const double nq = norm(q);  // post-sweep: the stale norm would
                                  // normalize deflation noise into the basis
      if (nq > 1e-10) {
        for (auto& x : q) x /= nq;
        push_basis(q);
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < block; ++i) {
    if (!seed_vector()) break;
  }
  FNE_REQUIRE(basis_count > 0, "degenerate start block");

  std::vector<double>& w = scratch.w;
  w.resize(n);
  std::vector<double> tcol;
  std::vector<double> ritz_values;
  std::vector<double> ritz_vectors;
  std::vector<double> projected;
  // Remainder norms of columns whose orthogonalized remainder was NOT
  // appended (basis cap reached).  Their coupling is invisible to the
  // stored T rows, so the residual bound must re-add it — without this a
  // capped solve would read empty coupling rows as "exactly converged".
  std::vector<double> dropped(max_basis, 0.0);

  // Rayleigh–Ritz cadence: first after one block, then geometrically
  // (~1.5x), so the dense O(m³) Householder+QL solves stay subdominant
  // to the O(m²·n) reorthogonalization stream.
  std::size_t processed = 0;
  std::size_t next_check = block;

  while (processed < basis_count) {
    const std::size_t j = processed;
    op(basis[j], w);
    orthogonalize(defl, defl.size(), w, coeff);
    const double before = norm(w);
    orthogonalize(basis, basis_count, w, coeff);
    tcol.assign(coeff.begin(), coeff.begin() + static_cast<std::ptrdiff_t>(basis_count));
    if (norm(w) < kDgks * before) orthogonalize(basis, basis_count, w, coeff);
    // Final deflation sweep, then the norm is measured POST-sweep: the
    // basis passes leave an O(ε) deflation residue, and near exhaustion
    // that residue can dominate the true remainder — normalizing by a
    // pre-sweep norm would push a near-zero vector into the basis, which
    // surfaces as ghost copies of the deflated eigenvalues.
    orthogonalize(defl, defl.size(), w, coeff);
    const double bnorm = norm(w);
    for (std::size_t i = 0; i < basis_count; ++i) {
      tmat[i * max_basis + j] = tcol[i];
      tmat[j * max_basis + i] = tcol[i];
    }
    ++processed;
    if (bnorm > 1e-13 && basis_count < max_basis) {
      for (auto& x : w) x /= bnorm;
      tmat[basis_count * max_basis + j] = bnorm;
      tmat[j * max_basis + basis_count] = bnorm;
      push_basis(w);
    } else {
      // This Krylov direction is exhausted (bnorm ~ 0) or the cap is
      // reached; the band narrows and the loop drains the remaining
      // columns.  The un-appended remainder still couples A Q_m out of
      // the basis — charge it to the residual bound below.
      dropped[j] = bnorm;
    }

    const bool no_more = processed == basis_count;
    if (processed < next_check && !no_more) continue;
    next_check = processed + std::max(block, processed / 2);

    const std::size_t m = processed;
    const int want = std::min<int>(options.num_eigenpairs, static_cast<int>(m));
    projected.assign(m * m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) projected[r * m + c] = tmat[r * max_basis + c];
    }
    sym_eigen(projected, m, ritz_values, &ritz_vectors);

    // Residual of Ritz pair (θ_e, y_e): A Q_m y - θ Q_m y lies in
    // span{q_m..q_{basis_count-1}} ∪ {un-appended remainders} (full
    // reorthogonalization leaves nothing else).  The basis part has
    // coefficient (T[i][0..m) · y_e) on q_i — stored above; the dropped
    // remainders are bounded by the triangle inequality.  When the
    // deflated space itself is exhausted both parts vanish and the Ritz
    // values are exact, so the zero residual is the truth.
    bool all_converged = true;
    for (int e = 0; e < want && all_converged; ++e) {
      double r2 = 0.0;
      for (std::size_t i = m; i < basis_count; ++i) {
        double s = 0.0;
        for (std::size_t c = 0; c < m; ++c) {
          s += tmat[i * max_basis + c] * ritz_vectors[c * m + static_cast<std::size_t>(e)];
        }
        r2 += s * s;
      }
      double resid = std::sqrt(r2);
      for (std::size_t c = 0; c < m; ++c) {
        if (dropped[c] > 0.0) {
          resid += dropped[c] * std::fabs(ritz_vectors[c * m + static_cast<std::size_t>(e)]);
        }
      }
      if (resid > options.tolerance) all_converged = false;
    }
    if (!all_converged && !no_more) continue;

    result.iterations = static_cast<int>(m);
    result.converged = all_converged;
    result.values.assign(ritz_values.begin(), ritz_values.begin() + want);
    result.vectors.assign(static_cast<std::size_t>(want), std::vector<double>(n, 0.0));
    for (int e = 0; e < want; ++e) {
      auto& vec = result.vectors[static_cast<std::size_t>(e)];
      for (std::size_t i = 0; i < m; ++i) {
        axpy(ritz_vectors[i * m + static_cast<std::size_t>(e)], basis[i], vec);
      }
      const double nv = norm(vec);
      if (nv > 0.0) {
        for (auto& x : vec) x /= nv;
      }
    }
    return result;
  }

  // Unreachable: the drain loop always returns at no_more.
  result.converged = false;
  return result;
}

}  // namespace fne
