// Dense symmetric eigensolver by cyclic Jacobi rotations.
//
// O(n^3)-per-sweep and meant for small matrices only; it serves as the
// ground-truth oracle in spectral unit tests and for exact spectra of
// small graphs.
#pragma once

#include <vector>

namespace fne {

/// Eigen-decomposition of the symmetric n×n row-major matrix `a`.
/// Eigenvalues come back ascending; if `vectors` is non-null, column j of
/// the row-major matrix holds the j-th eigenvector.
void jacobi_eigen(std::vector<double> a, std::size_t n, std::vector<double>& values,
                  std::vector<double>* vectors);

}  // namespace fne
