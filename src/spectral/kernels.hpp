// Chunk-deterministic SIMD reduction kernels of the spectral layer
// (DESIGN.md §7, §10).
//
// The determinism strategy is: FIX THE SUMMATION TREE.  Every reduction
// sums fixed 1024-element chunks and folds the chunk partials in index
// order; inside a chunk, kSimdLanes fixed strided accumulators are folded
// in lane order, then the sub-lane remainder is added sequentially.  The
// tree depends only on the input length — never on the OMP thread count,
// and (unlike a compiler-chosen `simd reduction`) not on whatever width
// the autovectorizer picks — so a result is one specific value per input.
// The lane loops are trivially vectorizable (`#pragma omp simd` over
// independent accumulators) because no float op crosses a lane.
//
// These were file-local to lanczos.cpp until PR 6; they are exposed here
// so the SubCsr apply shares the same fold, bench_kernels can measure the
// vectorization win, and the Chebyshev/CG surrogate operators reuse them.
#pragma once

#include <cstddef>
#include <vector>

#if defined(_OPENMP)
#define FNE_PRAGMA_SIMD _Pragma("omp simd")
#else
#define FNE_PRAGMA_SIMD
#endif

namespace fne {

/// Fixed reduction granularity for dot products.  Every dot — serial or
/// parallel — sums each 1024-element chunk first and folds the chunk
/// partials in index order, so the floating-point result is one specific
/// value per input, not one per thread count (DESIGN.md §7).
inline constexpr std::size_t kDotChunk = 1024;

/// Fixed SIMD accumulator width inside a chunk.  Eight doubles = one
/// AVX-512 register or two AVX2 registers; the explicit lane fold makes
/// the value independent of which (if either) the compiler emits.
inline constexpr std::size_t kSimdLanes = 8;

/// Chunk- and lane-deterministic dot product.  OpenMP-parallel over
/// chunks at n >= kSpectralParallelDim; identical bits either way.
[[nodiscard]] double spectral_dot(const std::vector<double>& a, const std::vector<double>& b);

/// sqrt(spectral_dot(a, a)).
[[nodiscard]] double spectral_norm(const std::vector<double>& a);

/// y += alpha * x.  Elementwise (no reduction), so SIMD and OpenMP are
/// trivially bit-safe.
void spectral_axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// x -= Σ_i <b_i, x> b_i over basis[0..count), classical Gram–Schmidt:
/// all coefficients against the incoming x first, then one fused blocked
/// rank-`count` update.  Two calls per Krylov step (CGS2) match the
/// stability of two-pass modified Gram–Schmidt while streaming every
/// basis vector exactly once per pass and exposing both loops to OpenMP.
/// Deterministic for any thread count: each coefficient is a chunked dot,
/// and each element of x subtracts its contributions in basis order
/// within its block.
void spectral_orthogonalize(const std::vector<std::vector<double>>& basis, std::size_t count,
                            std::vector<double>& x, std::vector<double>& coeff);

}  // namespace fne
