#include "spectral/cheeger.hpp"

namespace fne {

CheegerBounds cheeger_lower_bounds(double lambda2, vid max_degree) {
  CheegerBounds b;
  b.lambda2 = lambda2;
  b.edge_expansion_lower = lambda2 / 2.0;
  b.node_expansion_lower = max_degree > 0 ? lambda2 / (2.0 * static_cast<double>(max_degree)) : 0.0;
  return b;
}

}  // namespace fne
