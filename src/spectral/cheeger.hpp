// Cheeger-style spectral bounds tying λ₂ of the combinatorial Laplacian to
// the paper's expansion quantities.
//
// With edge expansion α_e = min_{|U| <= n/2} |(U, V\U)| / |U| and node
// expansion α = min |Γ(U)| / |U|:
//   * α_e >= λ₂ / 2            (cut(U) = xᵀLx lower bound)
//   * α   >= λ₂ / (2δ)         (each boundary node absorbs <= δ cut edges)
// These are certified *lower* bounds; constructive sweep cuts provide the
// matching upper bounds (expansion/sweep.hpp).
#pragma once

#include "core/graph.hpp"

namespace fne {

struct CheegerBounds {
  double lambda2 = 0.0;
  double edge_expansion_lower = 0.0;
  double node_expansion_lower = 0.0;
};

[[nodiscard]] CheegerBounds cheeger_lower_bounds(double lambda2, vid max_degree);

}  // namespace fne
