// Algebraic connectivity λ₂ and the Fiedler vector of a masked graph.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"

namespace fne {

struct FiedlerResult {
  double lambda2 = 0.0;            ///< second-smallest Laplacian eigenvalue
  std::vector<double> vector;      ///< per original vertex id; 0 for dead vertices
  bool converged = false;
};

struct FiedlerOptions {
  std::uint64_t seed = 7;
  int max_iterations = 400;
  double tolerance = 1e-8;
  /// Optional warm start, indexed by ORIGINAL vertex id (as FiedlerResult
  /// stores it).  It is restricted to the alive vertices and re-deflated
  /// against the all-ones kernel before use, so the previous iteration's
  /// vector of a slightly larger alive mask is a valid (and very good)
  /// initial guess.  nullptr = seeded random start.
  const std::vector<double>* warm_start = nullptr;
  /// Optional Lanczos buffer pool shared across solves.
  LanczosScratch* scratch = nullptr;
  /// Optional prebuilt sub-CSR of the alive subgraph (must match `alive`
  /// exactly — the PruneEngine maintains one incrementally across culls).
  /// nullptr: the solve builds its own, amortized over its 40+ applies.
  const SubCsr* sub = nullptr;
  /// Acceleration mode (DESIGN.md §10).  kAuto: plain below
  /// kFilteredAutoDim, Chebyshev-filtered at or above it.  A non-finite
  /// op_upper_bound is filled from gershgorin_upper_bound over the sub-CSR.
  SpectralAccel accel = SpectralAccel{SpectralMode::kAuto};
};

/// λ₂ and Fiedler vector of the subgraph induced by `alive`, which must be
/// connected and have >= 2 vertices.  The all-ones kernel is deflated.
[[nodiscard]] FiedlerResult fiedler_vector(const Graph& g, const VertexSet& alive,
                                           const FiedlerOptions& options);
[[nodiscard]] FiedlerResult fiedler_vector(const Graph& g, const VertexSet& alive,
                                           std::uint64_t seed = 7);

}  // namespace fne
