// Algebraic connectivity λ₂ and the Fiedler vector of a masked graph.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct FiedlerResult {
  double lambda2 = 0.0;            ///< second-smallest Laplacian eigenvalue
  std::vector<double> vector;      ///< per original vertex id; 0 for dead vertices
  bool converged = false;
};

/// λ₂ and Fiedler vector of the subgraph induced by `alive`, which must be
/// connected and have >= 2 vertices.  The all-ones kernel is deflated.
[[nodiscard]] FiedlerResult fiedler_vector(const Graph& g, const VertexSet& alive,
                                           std::uint64_t seed = 7);

}  // namespace fne
