#include "spectral/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace fne {

void jacobi_eigen(std::vector<double> a, std::size_t n, std::vector<double>& values,
                  std::vector<double>* vectors) {
  FNE_REQUIRE(n >= 1 && a.size() == n * n, "matrix size mismatch");
  FNE_REQUIRE(n <= 2048, "Jacobi eigensolver is for small matrices (n <= 2048)");

  std::vector<double> v;
  if (vectors != nullptr) {
    v.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;
  }

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    }
    return std::sqrt(2.0 * s);
  };

  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps && off_norm() > 1e-12; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        if (vectors != nullptr) {
          for (std::size_t k = 0; k < n; ++k) {
            const double vkp = v[k * n + p];
            const double vkq = v[k * n + q];
            v[k * n + p] = c * vkp - s * vkq;
            v[k * n + q] = s * vkp + c * vkq;
          }
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a[x * n + x] < a[y * n + y]; });
  values.resize(n);
  for (std::size_t j = 0; j < n; ++j) values[j] = a[order[j] * n + order[j]];
  if (vectors != nullptr) {
    vectors->assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) (*vectors)[i * n + j] = v[i * n + order[j]];
    }
  }
}

}  // namespace fne
