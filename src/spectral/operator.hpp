// Implicit symmetric linear operators over masked graphs.
//
// The spectral layer never materializes matrices: Lanczos only needs
// y = Op(x).  Two implementations of the masked combinatorial Laplacian
// L = D - A over compact indices [0, k) coexist (DESIGN.md §7):
//
//   * MaskedLaplacian — the original full-graph walk.  Every apply
//     re-traverses the COMPLETE CSR row of every alive vertex, pays a
//     to_sub gather plus a dead-neighbor branch per arc, and recounts the
//     alive degree it already counted on the previous apply.  Kept as the
//     bit-exact reference the sub-CSR kernel is parity-tested against.
//
//   * SubCsr + SubCsrLaplacian — a compact CSR over the alive vertices
//     only: offsets/adjacency hold sub indices, alive degrees are stored
//     once.  Built in O(|alive| + alive arcs) and amortized over the
//     40-400 applies of an eigensolve; the PruneEngine additionally
//     shrinks it incrementally after each cull (remove()) instead of
//     rebuilding, so a prune run walks the full graph exactly once.
//     apply() is branch-free per arc and row-parallel (rows are
//     independent, so OpenMP above kSpectralParallelDim cannot change
//     results — see the determinism note in lanczos.hpp).
//
// Both produce bit-identical y for the same (graph, mask, x): they
// enumerate alive vertices ascending and alive neighbors in the same
// (ascending) order, deg accumulates the same way, and both fold each
// row's neighbor sum through the same fixed kSimdLanes tree
// (spectral/kernels.hpp) — the SubCsr row kernel vectorizes, and the
// reference mirrors its summation order exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "spectral/kernels.hpp"
#include "util/require.hpp"

namespace fne {

/// Dimension at or above which the spectral kernels (sub-CSR apply and the
/// Lanczos dot/axpy/reorthogonalization) go parallel.  Below it the OpenMP
/// fork/join overhead exceeds the work; either side of the threshold the
/// summation order is fixed, so results never depend on the thread count.
inline constexpr std::size_t kSpectralParallelDim = 8192;

/// Compact CSR of the subgraph induced by an alive mask.
///
/// Invariants (relied on for bit-parity with MaskedLaplacian):
///   * verts lists the alive vertices in ascending original id;
///   * adj rows list alive neighbors in ascending original id, stored as
///     SUB indices (positions in verts);
///   * deg[i] == row length of i, as a double (the alive degree);
///   * to_sub[orig] is the sub index, kInvalidVertex for dead vertices.
///
/// The arrays are pooled: build() and remove() reuse capacity, so an
/// ExpansionWorkspace-resident SubCsr allocates only on first use.
struct SubCsr {
  std::vector<vid> verts;             ///< sub -> original id, ascending
  std::vector<vid> to_sub;            ///< original -> sub, kInvalidVertex if dead
  std::vector<std::size_t> offsets;   ///< dim()+1 row offsets into adj
  std::vector<vid> adj;               ///< alive neighbors as sub indices
  std::vector<double> deg;            ///< alive degree per sub vertex
  /// Set by the one owner that maintains the structure (the PruneEngine,
  /// for its current alive mask); consumers must treat false as "absent".
  bool valid = false;

  [[nodiscard]] std::size_t dim() const noexcept { return verts.size(); }

  /// Rebuild for the subgraph induced by `alive`.  O(|alive| + alive arcs)
  /// plus O(previous |verts|) map cleanup (O(n) only when the universe
  /// changed).
  void build(const Graph& g, const VertexSet& alive);

  /// Shrink in place after culling `culled` (a subset of the current
  /// vertices): drop their rows, drop arcs into them, remap the surviving
  /// sub indices.  Pure sequential array passes — no graph walk, no mask
  /// tests.  Equivalent to build(g, alive - culled), bit for bit.
  void remove(const VertexSet& culled);

  /// Pooled heap footprint (capacities — what a workspace-resident sub-CSR
  /// actually pins between runs).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (verts.capacity() + to_sub.capacity() + adj.capacity() + remap_.capacity()) *
               sizeof(vid) +
           offsets.capacity() * sizeof(std::size_t) + deg.capacity() * sizeof(double);
  }

 private:
  std::vector<vid> remap_;  ///< scratch for remove(): old sub -> new sub
};

/// y = (D - A) x over a prebuilt SubCsr.  Rows are independent; each row
/// accumulates its neighbors in storage order, so the result is identical
/// for any thread count.
class SubCsrLaplacian {
 public:
  explicit SubCsrLaplacian(const SubCsr& s) : s_(&s) {}

  [[nodiscard]] std::size_t dim() const noexcept { return s_->dim(); }
  [[nodiscard]] const std::vector<vid>& vertices() const noexcept { return s_->verts; }

  void apply(const std::vector<double>& x, std::vector<double>& y) const;

 private:
  const SubCsr* s_;
};

/// Reference implementation: full-graph walk with per-arc mask test.  Used
/// by parity tests and the kernel bench; production solves use SubCsr.
class MaskedLaplacian {
 public:
  MaskedLaplacian(const Graph& g, const VertexSet& alive)
      : graph_(&g), to_sub_(g.num_vertices(), kInvalidVertex), verts_(alive.to_vector()) {
    FNE_REQUIRE(alive.universe_size() == g.num_vertices(), "mask/graph size mismatch");
    for (vid i = 0; i < verts_.size(); ++i) to_sub_[verts_[i]] = i;
  }

  [[nodiscard]] std::size_t dim() const noexcept { return verts_.size(); }
  [[nodiscard]] const std::vector<vid>& vertices() const noexcept { return verts_; }

  /// y = (D - A) x over the induced subgraph.  The neighbor sum streams
  /// through the same fixed kSimdLanes tree as the SubCsr row kernel —
  /// lane blocks of 8 alive neighbors, folded in lane order, then the
  /// sub-lane tail sequentially — so the two implementations stay
  /// bit-identical on every mask, including high-degree rows.
  void apply(const std::vector<double>& x, std::vector<double>& y) const {
    FNE_REQUIRE(x.size() == dim() && y.size() == dim(), "operator dimension mismatch");
    for (std::size_t i = 0; i < verts_.size(); ++i) {
      const vid v = verts_[i];
      // Pass 1: alive degree (how many full lane blocks the row has).
      double deg = 0.0;
      std::size_t alive_count = 0;
      for (vid w : graph_->neighbors(v)) {
        if (to_sub_[w] == kInvalidVertex) continue;
        deg += 1.0;
        ++alive_count;
      }
      // Pass 2: lane-assign by position among the alive neighbors.  Tail
      // elements are buffered (< kSimdLanes of them) and appended after
      // the lane fold, exactly as the contiguous kernel does.
      const std::size_t vec_end = (alive_count / kSimdLanes) * kSimdLanes;
      double lane[kSimdLanes] = {0.0};
      double tail[kSimdLanes] = {0.0};
      std::size_t pos = 0;
      for (vid w : graph_->neighbors(v)) {
        const vid j = to_sub_[w];
        if (j == kInvalidVertex) continue;  // dead neighbor
        if (pos < vec_end) {
          lane[pos % kSimdLanes] += x[j];
        } else {
          tail[pos - vec_end] = x[j];
        }
        ++pos;
      }
      double acc = 0.0;
      for (std::size_t l = 0; l < kSimdLanes; ++l) acc += lane[l];
      for (std::size_t t = 0; t < alive_count - vec_end; ++t) acc += tail[t];
      y[i] = deg * x[i] - acc;
    }
  }

 private:
  const Graph* graph_;
  std::vector<vid> to_sub_;
  std::vector<vid> verts_;
};

/// Gershgorin upper bound on the spectrum of the SubCsr Laplacian:
/// max_i 2·deg[i] (row i's disc is [0, 2·deg[i]]).  One pass over the
/// stored degrees — cheap, deterministic, and tight enough for the
/// Chebyshev filter's damping interval (DESIGN.md §10).
[[nodiscard]] double gershgorin_upper_bound(const SubCsr& s);

}  // namespace fne
