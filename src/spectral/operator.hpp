// Implicit symmetric linear operators over masked graphs.
//
// The spectral layer never materializes matrices: Lanczos only needs
// y = Op(x).  MaskedLaplacian applies the combinatorial Laplacian
// L = D - A of the subgraph induced by an alive mask, over compact
// indices [0, k).
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "util/require.hpp"

namespace fne {

class MaskedLaplacian {
 public:
  MaskedLaplacian(const Graph& g, const VertexSet& alive)
      : graph_(&g), to_sub_(g.num_vertices(), kInvalidVertex), verts_(alive.to_vector()) {
    FNE_REQUIRE(alive.universe_size() == g.num_vertices(), "mask/graph size mismatch");
    for (vid i = 0; i < verts_.size(); ++i) to_sub_[verts_[i]] = i;
  }

  [[nodiscard]] std::size_t dim() const noexcept { return verts_.size(); }
  [[nodiscard]] const std::vector<vid>& vertices() const noexcept { return verts_; }

  /// y = (D - A) x over the induced subgraph.
  void apply(const std::vector<double>& x, std::vector<double>& y) const {
    FNE_REQUIRE(x.size() == dim() && y.size() == dim(), "operator dimension mismatch");
    for (std::size_t i = 0; i < verts_.size(); ++i) {
      const vid v = verts_[i];
      double acc = 0.0;
      double deg = 0.0;
      for (vid w : graph_->neighbors(v)) {
        const vid j = to_sub_[w];
        if (j == kInvalidVertex) continue;  // dead neighbor
        deg += 1.0;
        acc += x[j];
      }
      y[i] = deg * x[i] - acc;
    }
  }

 private:
  const Graph* graph_;
  std::vector<vid> to_sub_;
  std::vector<vid> verts_;
};

}  // namespace fne
