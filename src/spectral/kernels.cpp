#include "spectral/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "spectral/operator.hpp"  // kSpectralParallelDim

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

namespace {

/// One chunk's partial sum with the fixed 8-lane tree.  Lane l accumulates
/// elements lo+l, lo+l+8, ... strictly in index order; lanes fold in lane
/// order; the sub-lane tail adds sequentially.  A pure function of
/// (a, b, lo, hi) — threads and vector ISA cannot change a bit.
[[nodiscard]] double chunk_dot(const double* a, const double* b, std::size_t lo, std::size_t hi) {
  double lane[kSimdLanes] = {0.0};
  std::size_t i = lo;
  const std::size_t vec_end = lo + ((hi - lo) / kSimdLanes) * kSimdLanes;
  for (; i < vec_end; i += kSimdLanes) {
    FNE_PRAGMA_SIMD
    for (std::size_t l = 0; l < kSimdLanes; ++l) lane[l] += a[i + l] * b[i + l];
  }
  double s = 0.0;
  for (std::size_t l = 0; l < kSimdLanes; ++l) s += lane[l];
  for (; i < hi; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

double spectral_dot(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const std::size_t chunks = (n + kDotChunk - 1) / kDotChunk;
#ifdef _OPENMP
  if (n >= kSpectralParallelDim) {
    // One shared partials buffer per call (NOT thread_local: inside the
    // parallel region that would resolve to each worker's own instance).
    std::vector<double> partials(chunks, 0.0);
#pragma omp parallel for schedule(static)
    for (std::size_t c = 0; c < chunks; ++c) {
      partials[c] = chunk_dot(a.data(), b.data(), c * kDotChunk, std::min(n, (c + 1) * kDotChunk));
    }
    double total = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) total += partials[c];
    return total;
  }
#endif
  double total = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    total += chunk_dot(a.data(), b.data(), c * kDotChunk, std::min(n, (c + 1) * kDotChunk));
  }
  return total;
}

double spectral_norm(const std::vector<double>& a) { return std::sqrt(spectral_dot(a, a)); }

void spectral_axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  const std::size_t n = x.size();
  const double* xp = x.data();
  double* yp = y.data();
#ifdef _OPENMP
#pragma omp parallel for simd schedule(static) if (n >= kSpectralParallelDim)
#else
  FNE_PRAGMA_SIMD
#endif
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void spectral_orthogonalize(const std::vector<std::vector<double>>& basis, std::size_t count,
                            std::vector<double>& x, std::vector<double>& coeff) {
  if (count == 0) return;
  coeff.resize(count);
  for (std::size_t i = 0; i < count; ++i) coeff[i] = spectral_dot(basis[i], x);
  const std::size_t n = x.size();
  const std::size_t blocks = (n + kDotChunk - 1) / kDotChunk;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (n >= kSpectralParallelDim)
#endif
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t lo = blk * kDotChunk;
    const std::size_t hi = std::min(n, lo + kDotChunk);
    double* xp = x.data();
    for (std::size_t i = 0; i < count; ++i) {
      const double c = coeff[i];
      const double* bi = basis[i].data();
      FNE_PRAGMA_SIMD
      for (std::size_t e = lo; e < hi; ++e) xp[e] -= c * bi[e];
    }
  }
}

}  // namespace fne
