// Expander certificates for regular graphs via the expander mixing lemma.
//
// For a d-regular graph with adjacency second eigenvalue
// λ = max(λ₂(A), |λ_n(A)|), the mixing lemma gives the certified bound
//   α_e >= (d - λ₂(A)) / 2
// (this is the same bound as λ₂(L)/2 with L = dI - A, but computing it
// from the adjacency top of the spectrum exercises the other end of the
// Lanczos machinery and also yields λ for mixing-time statements).
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "spectral/lanczos.hpp"

namespace fne {

struct ExpanderCertificate {
  double degree = 0.0;          ///< d
  double lambda2_adj = 0.0;     ///< second-largest adjacency eigenvalue
  double lambda_min_adj = 0.0;  ///< smallest adjacency eigenvalue
  double lambda = 0.0;          ///< max(|λ₂|, |λ_min|) — the mixing λ
  double spectral_gap = 0.0;    ///< d - λ₂
  double edge_expansion_lower = 0.0;  ///< (d - λ₂)/2
  bool is_ramanujan = false;    ///< λ <= 2·sqrt(d-1) + tolerance
  bool converged = false;
};

struct ExpanderCertOptions {
  std::uint64_t seed = 7;
  /// Acceleration for both ends of the spectrum (DESIGN.md §10).  The
  /// bottom solve uses it as given; the top solve (on -L) re-derives its
  /// upper bound (0) and, for shift-invert, a shift that keeps -L - σI
  /// positive definite.
  SpectralAccel accel = SpectralAccel{SpectralMode::kAuto};
};

/// Certify the subgraph induced by `alive`, which must be connected and
/// d-regular within the mask.
[[nodiscard]] ExpanderCertificate certify_expander(const Graph& g, const VertexSet& alive,
                                                   const ExpanderCertOptions& options);
[[nodiscard]] ExpanderCertificate certify_expander(const Graph& g, const VertexSet& alive,
                                                   std::uint64_t seed = 7);

[[nodiscard]] ExpanderCertificate certify_expander(const Graph& g, std::uint64_t seed = 7);

}  // namespace fne
