#include "spectral/operator.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

void SubCsr::build(const Graph& g, const VertexSet& alive) {
  FNE_REQUIRE(alive.universe_size() == g.num_vertices(), "mask/graph size mismatch");
  const vid n = g.num_vertices();

  // Invalidate the previous mapping.  Only the previous vertices can hold
  // stale entries (remove() keeps the everything-else-is-invalid
  // invariant), so cleanup is O(previous dim) unless the universe changed.
  if (to_sub.size() == n) {
    for (vid v : verts) to_sub[v] = kInvalidVertex;
  } else {
    to_sub.assign(n, kInvalidVertex);
  }

  verts.clear();
  alive.for_each([&](vid v) { verts.push_back(v); });
  for (vid i = 0; i < static_cast<vid>(verts.size()); ++i) to_sub[verts[i]] = i;

  const std::size_t k = verts.size();
  offsets.resize(k + 1);
  adj.clear();
  deg.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    offsets[i] = adj.size();
    for (vid w : g.neighbors(verts[i])) {
      const vid j = to_sub[w];
      if (j != kInvalidVertex) adj.push_back(j);
    }
    deg[i] = static_cast<double>(adj.size() - offsets[i]);
  }
  offsets[k] = adj.size();
  valid = false;  // the owner decides when the structure is authoritative
}

void SubCsr::remove(const VertexSet& culled) {
  // 1. Invalidate the culled rows in the mapping; to_sub[verts[i]] ==
  //    kInvalidVertex is then the "row i is gone" test below.
  culled.for_each([&](vid v) {
    FNE_REQUIRE(v < to_sub.size() && to_sub[v] != kInvalidVertex,
                "SubCsr::remove: vertex not present");
    to_sub[v] = kInvalidVertex;
  });

  // 2. Old sub index -> new sub index for the survivors.
  const std::size_t k = verts.size();
  remap_.resize(k);
  vid next = 0;
  for (std::size_t i = 0; i < k; ++i) {
    remap_[i] = to_sub[verts[i]] != kInvalidVertex ? next++ : kInvalidVertex;
  }

  // 3. Compact rows, arcs and degrees in place (write pos <= read pos).
  //    Survivor order is preserved, so verts stays ascending and each row
  //    keeps its ascending neighbor order — the parity invariants.
  std::size_t write_arc = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const vid ni = remap_[i];
    if (ni == kInvalidVertex) continue;
    const std::size_t row_start = write_arc;
    for (std::size_t a = offsets[i]; a < offsets[i + 1]; ++a) {
      const vid nj = remap_[adj[a]];
      if (nj != kInvalidVertex) adj[write_arc++] = nj;
    }
    offsets[ni] = row_start;
    deg[ni] = static_cast<double>(write_arc - row_start);
    verts[ni] = verts[i];
    to_sub[verts[ni]] = ni;
  }
  verts.resize(next);
  deg.resize(next);
  offsets.resize(next + 1);
  offsets[next] = write_arc;
  adj.resize(write_arc);
}

void SubCsrLaplacian::apply(const std::vector<double>& x, std::vector<double>& y) const {
  FNE_REQUIRE(x.size() == dim() && y.size() == dim(), "operator dimension mismatch");
  const std::size_t k = s_->dim();
  const std::size_t* offsets = s_->offsets.data();
  const vid* adj = s_->adj.data();
  const double* deg = s_->deg.data();
  const double* xp = x.data();
  double* yp = y.data();
  // Each row writes only y[i] and reads its arcs in storage order: the
  // partition of rows across threads cannot change a single bit.
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (k >= kSpectralParallelDim)
#endif
  for (std::size_t i = 0; i < k; ++i) {
    // Gather with the shared kSimdLanes fold (kernels.hpp): lane blocks
    // first, then the sub-lane tail sequentially.  Rows shorter than
    // kSimdLanes — every row of a 2D mesh — take the pure tail path, so
    // the fold only reassociates rows long enough to profit from it.
    // MaskedLaplacian::apply mirrors the exact same tree to preserve
    // bit-parity on every mask.
    const std::size_t begin = offsets[i];
    const std::size_t end = offsets[i + 1];
    const std::size_t vec_end = begin + ((end - begin) / kSimdLanes) * kSimdLanes;
    double lane[kSimdLanes] = {0.0};
    std::size_t a = begin;
    for (; a < vec_end; a += kSimdLanes) {
      FNE_PRAGMA_SIMD
      for (std::size_t l = 0; l < kSimdLanes; ++l) lane[l] += xp[adj[a + l]];
    }
    double acc = 0.0;
    for (std::size_t l = 0; l < kSimdLanes; ++l) acc += lane[l];
    for (; a < end; ++a) acc += xp[adj[a]];
    yp[i] = deg[i] * xp[i] - acc;
  }
}

double gershgorin_upper_bound(const SubCsr& s) {
  // Laplacian row i has diagonal deg[i] and off-diagonal radius deg[i]
  // (all entries are -1), so every Gershgorin disc is [0, 2·deg[i]].
  double max_deg = 0.0;
  for (const double d : s.deg) max_deg = std::max(max_deg, d);
  return 2.0 * max_deg;
}

}  // namespace fne
