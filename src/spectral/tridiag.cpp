#include "spectral/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace fne {

namespace {
double hypot2(double a, double b) { return std::sqrt(a * a + b * b); }
}  // namespace

void tridiag_eigen(std::vector<double> diag, std::vector<double> off,
                   std::vector<double>& values, std::vector<double>* vectors) {
  const std::size_t n = diag.size();
  FNE_REQUIRE(n >= 1, "empty tridiagonal system");
  FNE_REQUIRE(off.size() + 1 == n, "off-diagonal must have size n-1");

  std::vector<double>& d = diag;
  std::vector<double> e(n, 0.0);
  std::copy(off.begin(), off.end(), e.begin());  // e[0..n-2] used, e[n-1] = 0

  std::vector<double> z;  // row-major eigenvector accumulator
  if (vectors != nullptr) {
    z.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) z[i * n + i] = 1.0;
  }

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m = l;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 + 2.3e-16 * dd) break;
      }
      if (m != l) {
        FNE_REQUIRE(++iter <= 50, "tridiagonal QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (vectors != nullptr) {
            for (std::size_t k = 0; k < n; ++k) {
              f = z[k * n + i + 1];
              z[k * n + i + 1] = s * z[k * n + i] + c * f;
              z[k * n + i] = c * z[k * n + i] - s * f;
            }
          }
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, permuting eigenvectors along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  values.resize(n);
  for (std::size_t j = 0; j < n; ++j) values[j] = d[order[j]];
  if (vectors != nullptr) {
    vectors->assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) (*vectors)[i * n + j] = z[i * n + order[j]];
    }
  }
}

}  // namespace fne
