#include "spectral/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"

namespace fne {

namespace {
double hypot2(double a, double b) { return std::sqrt(a * a + b * b); }
}  // namespace

void tridiag_eigen(std::vector<double> diag, std::vector<double> off,
                   std::vector<double>& values, std::vector<double>* vectors,
                   const std::vector<double>* init) {
  const std::size_t n = diag.size();
  FNE_REQUIRE(n >= 1, "empty tridiagonal system");
  FNE_REQUIRE(off.size() + 1 == n, "off-diagonal must have size n-1");

  std::vector<double>& d = diag;
  std::vector<double> e(n, 0.0);
  std::copy(off.begin(), off.end(), e.begin());  // e[0..n-2] used, e[n-1] = 0

  std::vector<double> z;  // row-major eigenvector accumulator
  if (vectors != nullptr) {
    if (init != nullptr) {
      FNE_REQUIRE(init->size() == n * n, "tridiag_eigen: init must be k x k");
      z = *init;
    } else {
      z.assign(n * n, 0.0);
      for (std::size_t i = 0; i < n; ++i) z[i * n + i] = 1.0;
    }
  }

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m = l;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 + 2.3e-16 * dd) break;
      }
      if (m != l) {
        FNE_REQUIRE(++iter <= 50, "tridiagonal QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (vectors != nullptr) {
            for (std::size_t k = 0; k < n; ++k) {
              f = z[k * n + i + 1];
              z[k * n + i + 1] = s * z[k * n + i] + c * f;
              z[k * n + i] = c * z[k * n + i] - s * f;
            }
          }
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }

  // Sort ascending, permuting eigenvectors along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  values.resize(n);
  for (std::size_t j = 0; j < n; ++j) values[j] = d[order[j]];
  if (vectors != nullptr) {
    vectors->assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) (*vectors)[i * n + j] = z[i * n + order[j]];
    }
  }
}

void sym_eigen(std::vector<double> a, std::size_t k, std::vector<double>& values,
               std::vector<double>* vectors) {
  FNE_REQUIRE(k >= 1 && a.size() == k * k, "sym_eigen: matrix must be k x k");
  const std::size_t n = k;
  std::vector<double>& v = a;  // reduced in place; becomes the transform Q
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);

  // Householder reduction to tridiagonal form (EISPACK tred2 lineage):
  // on exit v holds the orthogonal Q with A = Q T Qᵀ, d the diagonal and
  // e[1..n-1] the subdiagonal of T.
  for (std::size_t j = 0; j < n; ++j) d[j] = v[(n - 1) * n + j];
  for (std::size_t i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (std::size_t kk = 0; kk < i; ++kk) scale += std::fabs(d[kk]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (std::size_t j = 0; j < i; ++j) {
        d[j] = v[(i - 1) * n + j];
        v[i * n + j] = 0.0;
        v[j * n + i] = 0.0;
      }
    } else {
      for (std::size_t kk = 0; kk < i; ++kk) {
        d[kk] /= scale;
        h += d[kk] * d[kk];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0.0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (std::size_t j = 0; j < i; ++j) e[j] = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        v[j * n + i] = f;
        g = e[j] + v[j * n + j] * f;
        for (std::size_t kk = j + 1; kk < i; ++kk) {
          g += v[kk * n + j] * d[kk];
          e[kk] += v[kk * n + j] * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (std::size_t j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (std::size_t kk = j; kk < i; ++kk) v[kk * n + j] -= f * e[kk] + g * d[kk];
        d[j] = v[(i - 1) * n + j];
        v[i * n + j] = 0.0;
      }
    }
    d[i] = h;
  }
  // Accumulate the Householder transformations into v.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    v[(n - 1) * n + i] = v[i * n + i];
    v[i * n + i] = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (std::size_t kk = 0; kk <= i; ++kk) d[kk] = v[kk * n + (i + 1)] / h;
      for (std::size_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (std::size_t kk = 0; kk <= i; ++kk) g += v[kk * n + (i + 1)] * v[kk * n + j];
        for (std::size_t kk = 0; kk <= i; ++kk) v[kk * n + j] -= g * d[kk];
      }
    }
    for (std::size_t kk = 0; kk <= i; ++kk) v[kk * n + (i + 1)] = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) {
    d[j] = v[(n - 1) * n + j];
    v[(n - 1) * n + j] = 0.0;
  }
  v[(n - 1) * n + (n - 1)] = 1.0;

  // QL on (d, e[1..]), back-transforming through Q so the returned
  // columns are eigenvectors of the ORIGINAL dense matrix.
  std::vector<double> off(n > 1 ? n - 1 : 0, 0.0);
  for (std::size_t i = 1; i < n; ++i) off[i - 1] = e[i];
  tridiag_eigen(std::move(d), std::move(off), values, vectors,
                vectors != nullptr ? &v : nullptr);
}

}  // namespace fne
