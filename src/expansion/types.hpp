// Shared types for the expansion layer.
#pragma once

#include <limits>
#include <optional>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// Which of the paper's two expansion notions is being measured.
/// Node (§1.3):  α(U)  = |Γ(U)| / |U|,  minimized over |U| <= n/2.
/// Edge (§1.3):  αe(U) = |(U, V\U)| / min{|U|, |V\U|}.
enum class ExpansionKind { Node, Edge };

/// A cut witness: the set achieving some expansion value.
struct CutWitness {
  VertexSet side;       ///< the smaller side U (universe = original graph)
  double expansion = std::numeric_limits<double>::infinity();
  std::size_t boundary = 0;  ///< |Γ(U)| or |(U, V\U)| depending on kind
};

/// Certified two-sided estimate: lower <= α <= upper, with the witness
/// achieving `upper`.
struct ExpansionBracket {
  double lower = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  std::optional<CutWitness> witness;
  bool exact = false;  ///< lower == upper from exhaustive enumeration
};

}  // namespace fne
