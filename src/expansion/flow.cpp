#include "expansion/flow.hpp"

#include <algorithm>
#include <deque>

#include "core/subgraph.hpp"
#include "core/traversal.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

/// Unit-capacity Dinic on an explicit directed residual graph.
class Dinic {
 public:
  explicit Dinic(std::size_t n) : adj_(n), level_(n), iter_(n) {}

  void add_arc(vid u, vid v, int cap) {
    adj_[u].push_back({v, cap, adj_[v].size()});
    adj_[v].push_back({u, 0, adj_[u].size() - 1});
  }
  void add_undirected(vid u, vid v) {
    // An undirected unit edge: arcs both ways, each its own capacity.
    adj_[u].push_back({v, 1, adj_[v].size()});
    adj_[v].push_back({u, 1, adj_[u].size() - 1});
  }

  std::size_t max_flow(vid s, vid t, std::size_t cutoff = ~std::size_t{0}) {
    std::size_t flow = 0;
    while (flow < cutoff && bfs(s, t)) {
      std::fill(iter_.begin(), iter_.end(), 0U);
      while (flow < cutoff) {
        const int pushed = dfs(s, t, 1);
        if (pushed == 0) break;
        flow += static_cast<std::size_t>(pushed);
      }
    }
    return flow;
  }

  /// Vertices reachable from s in the residual graph (call after
  /// max_flow; the min cut consists of the saturated arcs leaving it).
  [[nodiscard]] std::vector<bool> residual_reachable(vid s) const {
    std::vector<bool> seen(adj_.size(), false);
    std::deque<vid> queue{s};
    seen[s] = true;
    while (!queue.empty()) {
      const vid u = queue.front();
      queue.pop_front();
      for (const Arc& a : adj_[u]) {
        if (a.cap > 0 && !seen[a.to]) {
          seen[a.to] = true;
          queue.push_back(a.to);
        }
      }
    }
    return seen;
  }

 private:
  struct Arc {
    vid to;
    int cap;
    std::size_t rev;
  };

  bool bfs(vid s, vid t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::deque<vid> queue{s};
    level_[s] = 0;
    while (!queue.empty()) {
      const vid u = queue.front();
      queue.pop_front();
      for (const Arc& a : adj_[u]) {
        if (a.cap > 0 && level_[a.to] < 0) {
          level_[a.to] = level_[u] + 1;
          queue.push_back(a.to);
        }
      }
    }
    return level_[t] >= 0;
  }

  int dfs(vid u, vid t, int limit) {
    if (u == t) return limit;
    for (std::size_t& i = iter_[u]; i < adj_[u].size(); ++i) {
      Arc& a = adj_[u][i];
      if (a.cap <= 0 || level_[a.to] != level_[u] + 1) continue;
      const int pushed = dfs(a.to, t, std::min(limit, a.cap));
      if (pushed > 0) {
        a.cap -= pushed;
        adj_[a.to][a.rev].cap += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<Arc>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

constexpr vid kFlowSizeLimit = 1u << 14;

}  // namespace

std::size_t max_edge_disjoint_paths(const Graph& g, const VertexSet& alive, vid s, vid t) {
  FNE_REQUIRE(alive.test(s) && alive.test(t) && s != t, "endpoints must be distinct and alive");
  FNE_REQUIRE(alive.count() <= kFlowSizeLimit, "flow oracle limited to small graphs");
  const InducedSubgraph sub = induced_subgraph(g, alive);
  Dinic dinic(sub.graph.num_vertices());
  for (const Edge& e : sub.graph.edges()) dinic.add_undirected(e.u, e.v);
  return dinic.max_flow(sub.to_sub[s], sub.to_sub[t]);
}

std::size_t max_vertex_disjoint_paths(const Graph& g, const VertexSet& alive, vid s, vid t) {
  FNE_REQUIRE(alive.test(s) && alive.test(t) && s != t, "endpoints must be distinct and alive");
  FNE_REQUIRE(alive.count() <= kFlowSizeLimit, "flow oracle limited to small graphs");
  const InducedSubgraph sub = induced_subgraph(g, alive);
  const vid n = sub.graph.num_vertices();
  // Vertex splitting: v -> (v_in = v, v_out = v + n), capacity 1 inside
  // except for the terminals (unbounded so all paths can start/end).
  Dinic dinic(2 * static_cast<std::size_t>(n));
  const vid ss = sub.to_sub[s];
  const vid tt = sub.to_sub[t];
  for (vid v = 0; v < n; ++v) {
    dinic.add_arc(v, v + n, (v == ss || v == tt) ? static_cast<int>(n) : 1);
  }
  for (const Edge& e : sub.graph.edges()) {
    dinic.add_arc(e.u + n, e.v, 1);
    dinic.add_arc(e.v + n, e.u, 1);
  }
  return dinic.max_flow(ss, tt + n);
}

VertexSet min_vertex_separator(const Graph& g, const VertexSet& alive, vid s, vid t) {
  FNE_REQUIRE(alive.test(s) && alive.test(t) && s != t, "endpoints must be distinct and alive");
  FNE_REQUIRE(!g.has_edge(s, t), "adjacent endpoints have no vertex separator");
  FNE_REQUIRE(alive.count() <= kFlowSizeLimit, "flow oracle limited to small graphs");
  const InducedSubgraph sub = induced_subgraph(g, alive);
  const vid n = sub.graph.num_vertices();
  Dinic dinic(2 * static_cast<std::size_t>(n));
  const vid ss = sub.to_sub[s];
  const vid tt = sub.to_sub[t];
  for (vid v = 0; v < n; ++v) {
    dinic.add_arc(v, v + n, (v == ss || v == tt) ? static_cast<int>(n) : 1);
  }
  for (const Edge& e : sub.graph.edges()) {
    dinic.add_arc(e.u + n, e.v, 1);
    dinic.add_arc(e.v + n, e.u, 1);
  }
  (void)dinic.max_flow(ss, tt + n);
  const std::vector<bool> reach = dinic.residual_reachable(ss);
  // Saturated split arcs v_in -> v_out with v_in reachable, v_out not,
  // form the minimum vertex cut.
  VertexSet separator(g.num_vertices());
  for (vid v = 0; v < n; ++v) {
    if (v == ss || v == tt) continue;
    if (reach[v] && !reach[v + static_cast<std::size_t>(n)]) {
      separator.set(sub.to_original[v]);
    }
  }
  return separator;
}

std::size_t edge_connectivity(const Graph& g, const VertexSet& alive) {
  const std::vector<vid> verts = alive.to_vector();
  FNE_REQUIRE(verts.size() >= 2, "edge connectivity needs >= 2 vertices");
  if (!is_connected(g, alive)) return 0;
  const vid s = verts.front();
  std::size_t best = ~std::size_t{0};
  for (std::size_t i = 1; i < verts.size(); ++i) {
    best = std::min(best, max_edge_disjoint_paths(g, alive, s, verts[i]));
    if (best == 0) break;
  }
  return best;
}

std::size_t vertex_connectivity(const Graph& g, const VertexSet& alive) {
  const std::vector<vid> verts = alive.to_vector();
  FNE_REQUIRE(verts.size() >= 2, "vertex connectivity needs >= 2 vertices");
  if (!is_connected(g, alive)) return 0;
  const vid s = verts.front();

  auto adjacent = [&](vid a, vid b) { return g.has_edge(a, b); };
  std::size_t best = verts.size() - 1;  // complete graph default
  bool found_pair = false;
  // Any minimum cut either separates s from a non-neighbor...
  for (vid t : verts) {
    if (t == s || adjacent(s, t)) continue;
    found_pair = true;
    best = std::min(best, max_vertex_disjoint_paths(g, alive, s, t));
  }
  // ...or contains s, in which case two of s's neighbors lie on opposite
  // sides (and are non-adjacent).
  std::vector<vid> nbrs;
  for (vid w : g.neighbors(s)) {
    if (alive.test(w)) nbrs.push_back(w);
  }
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (adjacent(nbrs[i], nbrs[j])) continue;
      found_pair = true;
      best = std::min(best, max_vertex_disjoint_paths(g, alive, nbrs[i], nbrs[j]));
    }
  }
  if (!found_pair) return verts.size() - 1;  // no non-adjacent pair: complete
  return best;
}

}  // namespace fne
