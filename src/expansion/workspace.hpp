// Pooled state threaded through the cut-finder portfolio.
//
// One find_violating_set call allocates BFS queues, sweep orderings,
// CutState arrays and a Krylov basis; a prune run makes hundreds of such
// calls over slowly-shrinking alive masks.  ExpansionWorkspace owns all of
// those buffers so the cull loop is allocation-free after warm-up, and it
// carries the two pieces of cross-iteration state the PruneEngine exploits:
// the previous Fiedler vector (warm start / stale-order sweep) and the
// incrementally-maintained alive-degree table (see DESIGN.md §5).
//
// A workspace never changes results by itself: with the fast-mode flags in
// CutFinderOptions left off, threading a workspace through the portfolio is
// bit-for-bit equivalent to the stateless path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/operator.hpp"

namespace fne {

/// Telemetry accumulated by the portfolio while a workspace is threaded
/// through it (zeroed by reset()).  The PruneEngine folds these into its
/// cumulative EngineStats after every run; benches report them to show
/// how much work fast mode actually skipped.
struct WorkspaceCounters {
  std::uint64_t eigensolves = 0;        ///< Fiedler solves performed (staged stages count)
  std::uint64_t stale_sweeps = 0;       ///< stale-ordering sweeps attempted
  std::uint64_t stale_sweep_hits = 0;   ///< ...that found a violating set (solve skipped)
};

class ExpansionWorkspace {
 public:
  ExpansionWorkspace() = default;

  /// Size every buffer for graphs over `n` vertices and invalidate the
  /// per-run caches (degree table, connectivity hint, counters).  The
  /// Fiedler cache survives when the universe is unchanged so repeated
  /// runs (fault sweeps, churn rounds) can reuse the previous run's
  /// ordering in fast mode.  Idempotent; call once per (graph, run).
  void reset(vid n);

  [[nodiscard]] vid universe_size() const noexcept { return universe_; }

  /// Resident heap footprint of every pooled buffer (capacities).  This —
  /// via PruneEngine::memory_bytes — is what the EngineCache charges an
  /// idle engine against its byte budget (DESIGN.md §13).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (order.capacity() + queue.capacity() + deg_alive.capacity()) * sizeof(vid) +
           lanczos.memory_bytes() + fiedler_vec.capacity() * sizeof(double) +
           subcsr.memory_bytes() + stamp.capacity() * sizeof(std::uint32_t);
  }

  /// Begin a new stamped visit pass; mark/seen work against the returned
  /// epoch.  Handles counter wrap by clearing the stamp array.
  std::uint32_t next_epoch() {
    if (++epoch == 0) {
      stamp.assign(stamp.size(), 0);
      epoch = 1;
    }
    return epoch;
  }
  void mark(vid v) noexcept { stamp[v] = epoch; }
  [[nodiscard]] bool marked(vid v) const noexcept { return stamp[v] == epoch; }

  // --- pooled buffers (contents are scratch between uses) ---
  std::vector<vid> order;   ///< sweep orderings
  std::vector<vid> queue;   ///< BFS worklists
  LanczosScratch lanczos;   ///< Krylov basis pool

  // --- cross-iteration caches (owned by PruneEngine when one is driving) ---
  /// Most recent Fiedler vector, per original vertex id.  Valid entries
  /// cover the alive mask of the solve that produced it; culled vertices
  /// simply stop being referenced.  This is the ONE channel through which
  /// an engine's history can reach a later run's results (fast mode only)
  /// — exactly what PruneEngine::drop_warm_state() severs when the
  /// EngineCache leases the engine to a new job (DESIGN.md §8).
  std::vector<double> fiedler_vec;
  bool fiedler_valid = false;

  /// Alive-degree per vertex (meaningful for alive vertices only).  When
  /// valid, CutState construction skips its O(n + m) degree recount.
  std::vector<vid> deg_alive;
  bool deg_alive_valid = false;

  /// Hint set by the engine: the current alive mask is known connected, so
  /// find_violating_set may skip its full component scan.
  bool alive_connected = false;

  /// Compact sub-CSR of the current alive subgraph (DESIGN.md §7).  The
  /// PruneEngine builds it at bootstrap, shrinks it after every cull
  /// (SubCsr::remove) and sets subcsr.valid while it is authoritative for
  /// the mask find_violating_set is being called with; fiedler_sweep then
  /// hands it to the eigensolve instead of rebuilding.  Like
  /// deg_alive_valid, the flag is cleared at the end of every engine run.
  SubCsr subcsr;

  /// Telemetry (see WorkspaceCounters); incremented by sweep/cut-finder
  /// code paths only when a workspace is present.
  WorkspaceCounters counters;

 private:
  vid universe_ = 0;
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
};

}  // namespace fne
