#include "expansion/cut_finder.hpp"

#include <algorithm>

#include "core/subgraph.hpp"
#include "core/traversal.hpp"
#include "expansion/bfs_ball.hpp"
#include "expansion/exact.hpp"
#include "expansion/local_search.hpp"
#include "expansion/sweep.hpp"
#include "spectral/fiedler.hpp"
#include "util/require.hpp"

namespace fne {

namespace {

/// Edge-mode candidates must be connected.  A disconnected S still
/// contains a connected violating piece: components of S have no edges
/// between them, so cut(S) = Σ cut(C_i) and |S| = Σ |C_i|, hence
/// min_i cut(C_i)/|C_i| <= cut(S)/|S|.
CutWitness best_connected_piece(const Graph& g, const VertexSet& alive, const CutWitness& w) {
  const Components comps = connected_components(g, w.side);
  if (comps.count() <= 1) return w;
  // Components of S have no edges between them, so each piece's cut to
  // alive \ piece equals its cut to alive \ S.  One pass over S bucketing
  // boundary edges by label replaces the old per-component rescan of the
  // whole side (O(components · n)).
  std::vector<std::size_t> cut_by_label(comps.count(), 0);
  w.side.for_each([&](vid u) {
    const std::uint32_t c = comps.label[u];
    for (vid v : g.neighbors(u)) {
      if (alive.test(v) && !w.side.test(v)) ++cut_by_label[c];
    }
  });
  CutWitness best;
  std::uint32_t best_label = 0;
  for (std::uint32_t c = 0; c < comps.sizes.size(); ++c) {
    const double ratio =
        static_cast<double>(cut_by_label[c]) / static_cast<double>(comps.sizes[c]);
    if (ratio < best.expansion) {
      best.expansion = ratio;
      best.boundary = cut_by_label[c];
      best_label = c;
    }
  }
  best.side = VertexSet(g.num_vertices());
  w.side.for_each([&](vid v) {
    if (comps.label[v] == best_label) best.side.set(v);
  });
  return best;
}

/// Re-evaluate a witness under the *per-|S|* threshold semantics of Prune:
/// both algorithms compare the boundary to threshold·|S| where S is the
/// small side, so the ratio must use |S|, not min{|S|, rest}.
double prune_ratio(const Graph& g, const VertexSet& alive, const VertexSet& side,
                   ExpansionKind kind, std::size_t* boundary_out) {
  const vid size = side.count();
  if (size == 0) return std::numeric_limits<double>::infinity();
  std::size_t boundary = 0;
  if (kind == ExpansionKind::Node) {
    boundary = node_boundary_size(g, alive, side);
  } else {
    boundary = edge_boundary_size(g, alive, side);
  }
  if (boundary_out != nullptr) *boundary_out = boundary;
  return static_cast<double>(boundary) / static_cast<double>(size);
}

}  // namespace

std::optional<CutWitness> find_violating_set(const Graph& g, const VertexSet& alive,
                                             ExpansionKind kind, double threshold,
                                             const CutFinderOptions& options,
                                             ExpansionWorkspace* ws) {
  const vid k = alive.count();
  if (k < 2) return std::nullopt;
  FNE_REQUIRE(threshold >= 0.0, "threshold must be non-negative");

  auto accept = [&](CutWitness w) -> std::optional<CutWitness> {
    if (w.side.empty() || 2 * w.side.count() > k) return std::nullopt;
    if (kind == ExpansionKind::Edge && !is_connected_subset(g, alive, w.side)) {
      w = best_connected_piece(g, alive, w);
      if (w.side.empty() || 2 * w.side.count() > k) return std::nullopt;
    }
    std::size_t boundary = 0;
    const double r = prune_ratio(g, alive, w.side, kind, &boundary);
    if (r <= threshold) {
      w.expansion = r;
      w.boundary = boundary;
      return w;
    }
    return std::nullopt;
  };

  // 0. Stale-order sweep (fast mode): the cached Fiedler vector of a
  //    slightly larger alive mask usually still orders the survivors well
  //    enough to expose a violating prefix; a hit costs one sweep and
  //    skips the eigensolve entirely.  Every candidate is validated by
  //    accept() against real boundaries, so a stale ordering can never
  //    produce an invalid cull — only a different (still certified) one.
  if (ws != nullptr && options.stale_sweep_first && ws->fiedler_valid &&
      ws->fiedler_vec.size() == g.num_vertices()) {
    SweepOptions sopts;
    sopts.early_exit_threshold = threshold;
    sopts.ws = ws;
    ++ws->counters.stale_sweeps;
    if (auto hit = accept(sweep_by_values(g, alive, kind, ws->fiedler_vec, sopts))) {
      ++ws->counters.stale_sweep_hits;
      return hit;
    }
  }

  // 1. Disconnected subgraph: everything but the largest component has an
  //    empty boundary (a violation for any threshold >= 0).  The engine
  //    maintains components incrementally and sets alive_connected when
  //    the scan is provably a no-op.
  if (ws == nullptr || !ws->alive_connected) {
    const Components comps = connected_components(g, alive);
    if (comps.count() > 1) {
      const std::uint32_t keep = comps.largest_label();
      if (kind == ExpansionKind::Node) {
        VertexSet rest(g.num_vertices());
        alive.for_each([&](vid v) {
          if (comps.label[v] != keep) rest.set(v);
        });
        // The union of non-largest components is <= half the alive set
        // (the largest component is at least as big as any other, so if
        // the rest exceeded half, one of its components would have to
        // exceed the largest).  Guard anyway for the pathological tie.
        if (2 * rest.count() <= k) {
          return CutWitness{std::move(rest), 0.0, 0};
        }
      }
      // Edge mode (or the pathological tie): return one smallest component.
      std::uint32_t smallest = keep == 0 && comps.sizes.size() > 1 ? 1 : 0;
      for (std::uint32_t c = 0; c < comps.sizes.size(); ++c) {
        if (c != keep && comps.sizes[c] < comps.sizes[smallest]) smallest = c;
      }
      if (smallest != keep && 2 * comps.sizes[smallest] <= k) {
        VertexSet piece(g.num_vertices());
        alive.for_each([&](vid v) {
          if (comps.label[v] == smallest) piece.set(v);
        });
        return CutWitness{std::move(piece), 0.0, 0};
      }
    }
  }

  // 2. Exhaustive for small subgraphs: definitive answer.
  if (options.use_exact && k <= options.exact_limit && k <= kExactExpansionLimit) {
    const CutWitness w = exact_expansion(g, alive, kind);
    // exact_expansion minimizes boundary/min-side which equals the Prune
    // ratio on the small side it reports.
    if (auto hit = accept(w)) return hit;
    if (kind == ExpansionKind::Node) return std::nullopt;  // exact scan is complete
    // Edge kind: the exact scan minimizes over all S (connected or not);
    // accept() above reduced it to its best connected piece.  If even that
    // piece fails the threshold, a connected minimizer could still exist
    // but cannot beat the unrestricted minimum, so only ratios in
    // [min, threshold] remain possible; fall through to heuristics.
  }

  const double sweep_exit =
      options.early_exit ? threshold : std::numeric_limits<double>::infinity();

  // 3. Fiedler sweep.  The sweep result doubles as the near-miss seed for
  //    step 5, so the (deterministic) eigensolve runs exactly once.
  std::optional<CutWitness> spectral_near;
  if (options.use_spectral) {
    FiedlerSweepOptions fso;
    fso.seed = options.seed;
    fso.ws = ws;
    fso.warm_start = options.warm_start;
    fso.early_exit_threshold = sweep_exit;
    fso.accel.mode = options.spectral_mode;
    fso.accel.filter_degree = options.filter_degree;
    spectral_near = fiedler_sweep(g, alive, kind, fso);
    if (auto hit = accept(*spectral_near)) {
      return hit;
    }
  }

  // 4. BFS-ball sweeps.
  if (options.use_balls) {
    SweepOptions sopts;
    sopts.ws = ws;
    sopts.early_exit_threshold = sweep_exit;
    if (auto hit = accept(
            best_ball_cut(g, alive, kind, options.ball_sources, options.seed, sopts))) {
      return hit;
    }
  }

  // 5. Local refinement of the spectral near-miss.
  if (spectral_near.has_value()) {
    CutWitness near = refine_cut(g, alive, std::move(*spectral_near), kind,
                                 options.refine_passes);
    if (auto hit = accept(near)) return hit;
  }

  return std::nullopt;
}

std::optional<CutWitness> find_violating_set(const Graph& g, const VertexSet& alive,
                                             ExpansionKind kind, double threshold,
                                             const CutFinderOptions& options) {
  return find_violating_set(g, alive, kind, threshold, options, nullptr);
}

}  // namespace fne
