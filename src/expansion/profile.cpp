#include "expansion/profile.hpp"

#include <array>
#include <limits>

#include "core/subgraph.hpp"
#include "expansion/exact.hpp"
#include "util/require.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

double IsoperimetricProfile::node_expansion() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t s = 1; s < node_boundary.size(); ++s) {
    best = std::min(best, static_cast<double>(node_boundary[s]) / static_cast<double>(s));
  }
  return best;
}

double IsoperimetricProfile::edge_expansion(vid n) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t s = 1; s < edge_boundary.size(); ++s) {
    const std::size_t denom = std::min<std::size_t>(s, n - s);
    best = std::min(best, static_cast<double>(edge_boundary[s]) / static_cast<double>(denom));
  }
  return best;
}

namespace {

/// One Gray-code strand accumulating per-size minima (same incremental
/// counters as expansion/exact.cpp, kept separate because this scan
/// collects a vector of results rather than one minimum).
struct ProfileScan {
  const std::vector<std::uint32_t>* adj = nullptr;
  std::uint32_t in_s = 0;
  int size = 0;
  std::array<int, 32> cnt{};
  long long cut = 0;
  int boundary = 0;
  std::vector<std::size_t> min_node;
  std::vector<std::size_t> min_edge;

  void flip(int v) {
    const std::uint32_t bit = std::uint32_t{1} << v;
    const bool entering = (in_s & bit) == 0;
    if (entering) {
      if (cnt[static_cast<std::size_t>(v)] > 0) --boundary;
      std::uint32_t nb = (*adj)[static_cast<std::size_t>(v)];
      while (nb != 0) {
        const int w = __builtin_ctz(nb);
        nb &= nb - 1;
        if ((in_s >> w) & 1U) {
          --cut;
        } else {
          ++cut;
          if (cnt[static_cast<std::size_t>(w)] == 0) ++boundary;
        }
        ++cnt[static_cast<std::size_t>(w)];
      }
      in_s |= bit;
      ++size;
    } else {
      in_s &= ~bit;
      --size;
      std::uint32_t nb = (*adj)[static_cast<std::size_t>(v)];
      while (nb != 0) {
        const int w = __builtin_ctz(nb);
        nb &= nb - 1;
        --cnt[static_cast<std::size_t>(w)];
        if ((in_s >> w) & 1U) {
          ++cut;
        } else {
          --cut;
          if (cnt[static_cast<std::size_t>(w)] == 0) --boundary;
        }
      }
      if (cnt[static_cast<std::size_t>(v)] > 0) ++boundary;
    }
  }

  void record(int n) {
    if (size >= 1 && 2 * size <= n) {
      auto& slot = min_node[static_cast<std::size_t>(size)];
      slot = std::min(slot, static_cast<std::size_t>(boundary));
    }
    if (size >= 1 && size < n) {
      auto& slot = min_edge[static_cast<std::size_t>(size)];
      slot = std::min(slot, static_cast<std::size_t>(cut));
    }
  }
};

}  // namespace

IsoperimetricProfile isoperimetric_profile(const Graph& g, const VertexSet& alive) {
  const vid k = alive.count();
  FNE_REQUIRE(k >= 2, "profile needs >= 2 vertices");
  FNE_REQUIRE(k <= kExactExpansionLimit, "exact profile limited to small graphs");
  const InducedSubgraph sub = induced_subgraph(g, alive);
  const int n = static_cast<int>(k);

  std::vector<std::uint32_t> adj(static_cast<std::size_t>(n), 0);
  for (const Edge& e : sub.graph.edges()) {
    adj[e.u] |= std::uint32_t{1} << e.v;
    adj[e.v] |= std::uint32_t{1} << e.u;
  }

  const int t = n >= 18 ? 3 : 0;
  const int low = n - t;
  const std::uint32_t strands = std::uint32_t{1} << t;
  const std::uint64_t steps = std::uint64_t{1} << low;
  const std::size_t node_slots = static_cast<std::size_t>(n) / 2 + 1;
  const std::size_t edge_slots = static_cast<std::size_t>(n);
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

  std::vector<ProfileScan> scans(strands);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
  for (std::uint32_t c = 0; c < strands; ++c) {
    ProfileScan& scan = scans[c];
    scan.adj = &adj;
    scan.min_node.assign(node_slots, kInf);
    scan.min_edge.assign(edge_slots, kInf);
    // Start at the strand's base subset (top bits = c).
    std::uint32_t base = c << low;
    while (base != 0) {
      const int v = __builtin_ctz(base);
      base &= base - 1;
      scan.flip(v);
    }
    scan.record(n);
    for (std::uint64_t i = 1; i < steps; ++i) {
      scan.flip(__builtin_ctzll(i));
      scan.record(n);
    }
  }

  IsoperimetricProfile profile;
  profile.node_boundary.assign(node_slots, kInf);
  profile.edge_boundary.assign(edge_slots, kInf);
  for (const ProfileScan& scan : scans) {
    for (std::size_t s = 0; s < node_slots; ++s) {
      profile.node_boundary[s] = std::min(profile.node_boundary[s], scan.min_node[s]);
    }
    for (std::size_t s = 0; s < edge_slots; ++s) {
      profile.edge_boundary[s] = std::min(profile.edge_boundary[s], scan.min_edge[s]);
    }
  }
  profile.node_boundary[0] = 0;
  profile.edge_boundary[0] = 0;
  return profile;
}

IsoperimetricProfile isoperimetric_profile(const Graph& g) {
  return isoperimetric_profile(g, VertexSet::full(g.num_vertices()));
}

}  // namespace fne
