#include "expansion/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "expansion/cut_state.hpp"
#include "spectral/fiedler.hpp"
#include "util/require.hpp"

namespace fne {

CutWitness sweep_cut(const Graph& g, const VertexSet& alive, const std::vector<vid>& order,
                     ExpansionKind kind, const SweepOptions& options) {
  FNE_REQUIRE(order.size() == alive.count(), "order must enumerate the alive set");
  const std::vector<vid>* deg_hint =
      options.ws != nullptr && options.ws->deg_alive_valid ? &options.ws->deg_alive : nullptr;
  CutState state(g, alive, deg_hint);
  const vid k = state.total_alive();

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_prefix = 0;
  bool best_is_suffix = false;
  long long best_boundary = 0;

  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    state.add(order[i]);
    const double r = state.ratio(kind);
    if (r < best) {
      best = r;
      best_prefix = i + 1;
      best_is_suffix = false;
      best_boundary = kind == ExpansionKind::Node ? state.out_boundary() : state.cut();
    }
    if (kind == ExpansionKind::Node) {
      // When the prefix is the *large* side the candidate set is the suffix.
      const double rc = state.complement_node_ratio();
      if (rc < best) {
        best = rc;
        best_prefix = i + 1;
        best_is_suffix = true;
        best_boundary = state.in_boundary();
      }
    }
    // The caller only needs *a* violating candidate: the verdict at the
    // threshold is decided as soon as one prefix (or suffix) reaches it.
    // (The default threshold is +inf, which must never trigger: `best`
    // starts at +inf and the full sweep is the reference behavior.)
    if (options.early_exit_threshold != std::numeric_limits<double>::infinity() &&
        best <= options.early_exit_threshold) {
      break;
    }
  }

  CutWitness witness;
  witness.expansion = best;
  witness.boundary = static_cast<std::size_t>(best_boundary);
  witness.side = VertexSet(g.num_vertices());
  if (best_is_suffix) {
    for (std::size_t i = best_prefix; i < order.size(); ++i) witness.side.set(order[i]);
  } else {
    for (std::size_t i = 0; i < best_prefix; ++i) witness.side.set(order[i]);
  }
  // For edge expansion report the smaller side.
  if (kind == ExpansionKind::Edge && 2 * witness.side.count() > k) {
    witness.side = alive - witness.side;
  }
  return witness;
}

CutWitness sweep_cut(const Graph& g, const VertexSet& alive, const std::vector<vid>& order,
                     ExpansionKind kind) {
  return sweep_cut(g, alive, order, kind, SweepOptions{});
}

CutWitness sweep_by_values(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                           const std::vector<double>& values, const SweepOptions& options) {
  std::vector<vid> local_order;
  std::vector<vid>& order = options.ws != nullptr ? options.ws->order : local_order;
  order.clear();
  alive.for_each([&](vid v) { order.push_back(v); });
  std::stable_sort(order.begin(), order.end(),
                   [&](vid a, vid b) { return values[a] < values[b]; });
  return sweep_cut(g, alive, order, kind, options);
}

CutWitness fiedler_sweep(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                         const FiedlerSweepOptions& options) {
  ExpansionWorkspace* ws = options.ws;
  FiedlerOptions fopts;
  fopts.seed = options.seed;
  fopts.accel = options.accel;
  if (ws != nullptr) {
    fopts.scratch = &ws->lanczos;
    if (options.warm_start && ws->fiedler_valid &&
        ws->fiedler_vec.size() == g.num_vertices()) {
      fopts.warm_start = &ws->fiedler_vec;
    }
  }

  // Every path below eigensolves at least once, so resolve the operator's
  // sub-CSR up front: the engine-maintained one when it is authoritative
  // for this mask, otherwise one local build shared by all solve stages.
  SubCsr local_sub;
  if (ws != nullptr && ws->subcsr.valid && ws->subcsr.dim() == alive.count()) {
    fopts.sub = &ws->subcsr;
  } else {
    local_sub.build(g, alive);
    fopts.sub = &local_sub;
  }

  SweepOptions sopts;
  sopts.early_exit_threshold = options.early_exit_threshold;
  sopts.ws = ws;

  // Fast path: the caller only needs the verdict at a threshold, so the
  // eigensolve runs in stages — a sharply truncated Lanczos first, full
  // accuracy only if the crude vector's sweep leaves the verdict open.
  // Each stage warm-starts from the previous stage's Ritz vector, so work
  // is never thrown away.  Cut quality is a function of the *ordering*,
  // not of eigenvalue accuracy, which is why a 40-iteration vector
  // usually decides the verdict that the 400-iteration solve would.
  const bool staged = ws != nullptr &&
                      options.early_exit_threshold != std::numeric_limits<double>::infinity();
  if (staged) {
    constexpr int kStageIterations[] = {40, 120, 400};
    CutWitness last;
    for (int stage = 0; stage < 3; ++stage) {
      fopts.max_iterations = kStageIterations[stage];
      ++ws->counters.eigensolves;
      FiedlerResult fiedler = fiedler_vector(g, alive, fopts);
      const bool converged = fiedler.converged;
      ws->fiedler_vec = std::move(fiedler.vector);
      ws->fiedler_valid = true;
      fopts.warm_start = &ws->fiedler_vec;  // escalation continues from here
      last = sweep_by_values(g, alive, kind, ws->fiedler_vec, sopts);
      if (last.expansion <= options.early_exit_threshold || converged) break;
    }
    return last;
  }

  if (ws != nullptr) ++ws->counters.eigensolves;
  FiedlerResult fiedler = fiedler_vector(g, alive, fopts);

  // Cache the vector for the next iteration's warm start / stale sweep.
  const std::vector<double>* values = &fiedler.vector;
  if (ws != nullptr) {
    ws->fiedler_vec = std::move(fiedler.vector);
    ws->fiedler_valid = true;
    values = &ws->fiedler_vec;
  }
  return sweep_by_values(g, alive, kind, *values, sopts);
}

CutWitness fiedler_sweep(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                         std::uint64_t seed) {
  FiedlerSweepOptions options;
  options.seed = seed;
  return fiedler_sweep(g, alive, kind, options);
}

}  // namespace fne
