#include "expansion/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "expansion/cut_state.hpp"
#include "spectral/fiedler.hpp"
#include "util/require.hpp"

namespace fne {

CutWitness sweep_cut(const Graph& g, const VertexSet& alive, const std::vector<vid>& order,
                     ExpansionKind kind) {
  FNE_REQUIRE(order.size() == alive.count(), "order must enumerate the alive set");
  CutState state(g, alive);
  const vid k = state.total_alive();

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_prefix = 0;
  bool best_is_suffix = false;
  long long best_boundary = 0;

  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    state.add(order[i]);
    const double r = state.ratio(kind);
    if (r < best) {
      best = r;
      best_prefix = i + 1;
      best_is_suffix = false;
      best_boundary = kind == ExpansionKind::Node ? state.out_boundary() : state.cut();
    }
    if (kind == ExpansionKind::Node) {
      // When the prefix is the *large* side the candidate set is the suffix.
      const double rc = state.complement_node_ratio();
      if (rc < best) {
        best = rc;
        best_prefix = i + 1;
        best_is_suffix = true;
        best_boundary = state.in_boundary();
      }
    }
  }

  CutWitness witness;
  witness.expansion = best;
  witness.boundary = static_cast<std::size_t>(best_boundary);
  witness.side = VertexSet(g.num_vertices());
  if (best_is_suffix) {
    for (std::size_t i = best_prefix; i < order.size(); ++i) witness.side.set(order[i]);
  } else {
    for (std::size_t i = 0; i < best_prefix; ++i) witness.side.set(order[i]);
  }
  // For edge expansion report the smaller side.
  if (kind == ExpansionKind::Edge && 2 * witness.side.count() > k) {
    witness.side = alive - witness.side;
  }
  return witness;
}

CutWitness fiedler_sweep(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                         std::uint64_t seed) {
  const FiedlerResult fiedler = fiedler_vector(g, alive, seed);
  std::vector<vid> order = alive.to_vector();
  std::stable_sort(order.begin(), order.end(),
                   [&](vid a, vid b) { return fiedler.vector[a] < fiedler.vector[b]; });
  return sweep_cut(g, alive, order, kind);
}

}  // namespace fne
