// Uniform-expansion probing (paper §2, Theorem 2.5 hypothesis).
//
// A graph G of size n has uniform expansion α(·) when G itself has
// expansion α(n) and every size-m subgraph has expansion O(α(m)).  This
// probe samples random connected subgraphs at requested sizes and brackets
// their expansion, producing the evidence table behind E3.
#pragma once

#include <cstdint>
#include <vector>

#include "expansion/types.hpp"

namespace fne {

struct UniformProbeRecord {
  vid subgraph_size = 0;
  double expansion_lower = 0.0;
  double expansion_upper = 0.0;
  bool exact = false;
};

/// Sample `samples` random connected subgraphs of each size in `sizes`
/// (BFS growth from random seeds) and bracket each one's expansion.
[[nodiscard]] std::vector<UniformProbeRecord> probe_uniform_expansion(
    const Graph& g, ExpansionKind kind, const std::vector<vid>& sizes, int samples,
    std::uint64_t seed);

/// Random connected vertex set of exactly `size` grown from a random seed
/// vertex by randomized BFS (frontier picked uniformly).  Returns an empty
/// set when the component containing the seed is too small.
[[nodiscard]] VertexSet random_connected_set(const Graph& g, const VertexSet& alive, vid size,
                                             std::uint64_t seed);

}  // namespace fne
