// The cut-finder portfolio: the constructive stand-in for line 2 of the
// paper's existential Prune/Prune2 algorithms ("while ∃ S_i ⊆ G_i such
// that ...").  See DESIGN.md §1 for why this substitution is sound.
#pragma once

#include <cstdint>
#include <optional>

#include "expansion/types.hpp"

namespace fne {

struct CutFinderOptions {
  vid exact_limit = 20;    ///< exhaustive search for subgraphs up to this size
  vid ball_sources = 12;
  int refine_passes = 6;
  std::uint64_t seed = 7;
  bool use_spectral = true;
  bool use_balls = true;
  bool use_exact = true;
};

/// Find S ⊆ alive with |S| <= |alive|/2 violating the expansion threshold:
///   Node: |Γ(S)| <= threshold · |S|
///   Edge: |(S, alive\S)| <= threshold · |S|, with S connected (Prune2
///         requires a connected S_i).
/// Returns the witness, or nullopt when the portfolio finds none.  With
/// use_exact and |alive| <= exact_limit the answer is definitive.
[[nodiscard]] std::optional<CutWitness> find_violating_set(const Graph& g, const VertexSet& alive,
                                                           ExpansionKind kind, double threshold,
                                                           const CutFinderOptions& options = {});

}  // namespace fne
