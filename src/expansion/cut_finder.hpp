// The cut-finder portfolio: the constructive stand-in for line 2 of the
// paper's existential Prune/Prune2 algorithms ("while ∃ S_i ⊆ G_i such
// that ...").  See DESIGN.md §1 for why this substitution is sound.
#pragma once

#include <cstdint>
#include <optional>

#include "expansion/types.hpp"
#include "expansion/workspace.hpp"
#include "spectral/lanczos.hpp"

namespace fne {

struct CutFinderOptions {
  vid exact_limit = 20;    ///< exhaustive search for subgraphs up to this size
  vid ball_sources = 12;
  int refine_passes = 6;
  std::uint64_t seed = 7;
  bool use_spectral = true;
  bool use_balls = true;
  bool use_exact = true;
  /// Eigensolve acceleration for the spectral stage (DESIGN.md §10).
  /// kAuto keeps every sub-kFilteredAutoDim solve on the plain path —
  /// bit-identical to the pre-PR-6 portfolio — and switches the large
  /// components a scaled-up scenario produces to the Chebyshev filter.
  SpectralMode spectral_mode = SpectralMode::kAuto;
  /// Chebyshev degree for filtered solves; <= 0 = auto from the probe.
  int filter_degree = 0;

  // Fast-mode switches (honored only when a workspace is supplied; see
  // DESIGN.md §5).  All default off: the default configuration is
  // bit-identical to the stateless portfolio.  Turning them on changes
  // WHICH violating set is found — never whether the found set is valid.
  /// Warm-start the Fiedler eigensolve from the workspace's cached vector.
  bool warm_start = false;
  /// Before any eigensolve, sweep the ordering induced by the cached
  /// (stale) Fiedler vector; a hit skips the solve entirely.
  bool stale_sweep_first = false;
  /// Let sweeps stop at the first candidate reaching the threshold.
  bool early_exit = false;
};

/// Find S ⊆ alive with |S| <= |alive|/2 violating the expansion threshold:
///   Node: |Γ(S)| <= threshold · |S|
///   Edge: |(S, alive\S)| <= threshold · |S|, with S connected (Prune2
///         requires a connected S_i).
/// Returns the witness, or nullopt when the portfolio finds none.  With
/// use_exact and |alive| <= exact_limit the answer is definitive.
///
/// The workspace overload pools every scratch allocation and enables the
/// fast-mode options above; `ws->alive_connected` additionally skips the
/// initial component scan (the PruneEngine maintains components
/// incrementally and only sets the hint when it is true).
[[nodiscard]] std::optional<CutWitness> find_violating_set(const Graph& g, const VertexSet& alive,
                                                           ExpansionKind kind, double threshold,
                                                           const CutFinderOptions& options,
                                                           ExpansionWorkspace* ws);
[[nodiscard]] std::optional<CutWitness> find_violating_set(const Graph& g, const VertexSet& alive,
                                                           ExpansionKind kind, double threshold,
                                                           const CutFinderOptions& options = {});

}  // namespace fne
