// Incremental cut bookkeeping shared by sweep cuts and local search.
//
// Tracks, for an evolving set S inside the alive subgraph:
//   * cut            = |(S, alive \ S)|
//   * out_boundary   = |Γ(S)|            (alive vertices outside S adjacent to S)
//   * in_boundary    = |Γ(alive \ S)|    (vertices of S adjacent to the outside)
// Each flip costs O(deg).
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"
#include "expansion/types.hpp"

namespace fne {

class CutState {
 public:
  /// `deg_alive_hint`, when non-null, must hold the alive-degree of every
  /// alive vertex (entries of dead vertices are ignored); it lets a caller
  /// that maintains degrees incrementally (PruneEngine) skip this
  /// constructor's O(n + m) recount.
  CutState(const Graph& g, const VertexSet& alive,
           const std::vector<vid>* deg_alive_hint = nullptr)
      : graph_(&g),
        alive_(&alive),
        in_s_(g.num_vertices(), 0),
        cnt_in_(g.num_vertices(), 0) {
    if (deg_alive_hint != nullptr && deg_alive_hint->size() == g.num_vertices()) {
      deg_ptr_ = deg_alive_hint->data();
      total_ = alive.count();
    } else {
      deg_alive_.assign(g.num_vertices(), 0);
      alive.for_each([&](vid v) {
        ++total_;
        vid d = 0;
        for (vid w : g.neighbors(v)) {
          if (alive.test(w)) ++d;
        }
        deg_alive_[v] = d;
      });
      deg_ptr_ = deg_alive_.data();
    }
  }

  // deg_ptr_ may point into this object's own deg_alive_; copying or
  // moving would leave it dangling, and no caller needs either.
  CutState(const CutState&) = delete;
  CutState& operator=(const CutState&) = delete;
  CutState(CutState&&) = delete;
  CutState& operator=(CutState&&) = delete;

  [[nodiscard]] vid total_alive() const noexcept { return total_; }
  [[nodiscard]] vid size() const noexcept { return size_; }
  [[nodiscard]] long long cut() const noexcept { return cut_; }
  [[nodiscard]] long long out_boundary() const noexcept { return out_boundary_; }
  [[nodiscard]] long long in_boundary() const noexcept { return in_boundary_; }
  [[nodiscard]] bool contains(vid v) const noexcept { return in_s_[v] != 0; }

  /// Toggle membership of alive vertex v.
  void flip(vid v) {
    if (in_s_[v]) {
      remove(v);
    } else {
      add(v);
    }
  }

  void add(vid v) {
    in_s_[v] = 1;
    ++size_;
    if (cnt_in_[v] > 0) --out_boundary_;
    if (cnt_in_[v] < deg_ptr_[v]) ++in_boundary_;
    for (vid w : graph_->neighbors(v)) {
      if (!alive_->test(w)) continue;
      if (in_s_[w]) {
        --cut_;
        ++cnt_in_[w];
        if (cnt_in_[w] == deg_ptr_[w]) --in_boundary_;  // w fully inside now
      } else {
        ++cut_;
        if (cnt_in_[w] == 0) ++out_boundary_;
        ++cnt_in_[w];
      }
    }
  }

  void remove(vid v) {
    in_s_[v] = 0;
    --size_;
    for (vid w : graph_->neighbors(v)) {
      if (!alive_->test(w)) continue;
      if (in_s_[w]) {
        ++cut_;
        if (cnt_in_[w] == deg_ptr_[w]) ++in_boundary_;  // w regains an outside neighbor
        --cnt_in_[w];
      } else {
        --cut_;
        --cnt_in_[w];
        if (cnt_in_[w] == 0) --out_boundary_;
      }
    }
    if (cnt_in_[v] > 0) ++out_boundary_;
    if (cnt_in_[v] < deg_ptr_[v]) --in_boundary_;
  }

  /// Expansion of the current S under `kind`; +inf when S is an invalid
  /// candidate (empty, full, or > half for node expansion).
  [[nodiscard]] double ratio(ExpansionKind kind) const noexcept {
    if (size_ == 0 || size_ == total_) return std::numeric_limits<double>::infinity();
    if (kind == ExpansionKind::Node) {
      if (2 * size_ > total_) return std::numeric_limits<double>::infinity();
      return static_cast<double>(out_boundary_) / static_cast<double>(size_);
    }
    const vid denom = size_ < total_ - size_ ? size_ : total_ - size_;
    return static_cast<double>(cut_) / static_cast<double>(denom);
  }

  /// Expansion of the *complement* side (alive \ S) under node kind.
  [[nodiscard]] double complement_node_ratio() const noexcept {
    const vid rest = total_ - size_;
    if (rest == 0 || rest == total_ || 2 * rest > total_) {
      return std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(in_boundary_) / static_cast<double>(rest);
  }

 private:
  const Graph* graph_;
  const VertexSet* alive_;
  std::vector<std::uint8_t> in_s_;
  std::vector<vid> cnt_in_;
  std::vector<vid> deg_alive_;        // owned degrees (unused when a hint is supplied)
  const vid* deg_ptr_ = nullptr;      // active degree table (owned or hinted)
  vid total_ = 0;
  vid size_ = 0;
  long long cut_ = 0;
  long long out_boundary_ = 0;
  long long in_boundary_ = 0;
};

}  // namespace fne
