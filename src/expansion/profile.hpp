// Exact isoperimetric profiles.
//
// The expansion α is the minimum over one normalization of the
// isoperimetric profile b(s) = min_{|S| = s} boundary(S).  The profile
// itself is strictly more informative — Theorem 2.5's "uniform
// expansion" hypothesis is a statement about its growth — and for several
// classical graphs it is known exactly (Harper: subcubes/Hamming balls
// are optimal in the hypercube), which the unit tests pin.
//
// Computed by the same Gray-code subset scan as exact_expansion, in one
// pass for both boundary types; exact for n <= kExactExpansionLimit.
#pragma once

#include <vector>

#include "core/vertex_set.hpp"
#include "expansion/types.hpp"

namespace fne {

struct IsoperimetricProfile {
  /// min node boundary per subset size: node_boundary[s] for s in [1, n/2].
  std::vector<std::size_t> node_boundary;
  /// min edge boundary per subset size: edge_boundary[s] for s in [1, n-1].
  std::vector<std::size_t> edge_boundary;

  /// α derived from the profile: min over s <= n/2 of node_boundary[s]/s.
  [[nodiscard]] double node_expansion() const;
  /// α_e derived from the profile.
  [[nodiscard]] double edge_expansion(vid n) const;
};

/// Exact profile of the subgraph induced by `alive` (>= 2 vertices,
/// <= kExactExpansionLimit).
[[nodiscard]] IsoperimetricProfile isoperimetric_profile(const Graph& g, const VertexSet& alive);

[[nodiscard]] IsoperimetricProfile isoperimetric_profile(const Graph& g);

}  // namespace fne
