#include "expansion/uniform.hpp"

#include "core/subgraph.hpp"
#include "expansion/bracket.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

VertexSet random_connected_set(const Graph& g, const VertexSet& alive, vid size,
                               std::uint64_t seed) {
  Rng rng(seed);
  VertexSet result(g.num_vertices());
  const std::vector<vid> pool = alive.to_vector();
  if (pool.empty() || size == 0) return result;
  const vid start = pool[rng.uniform(pool.size())];

  std::vector<vid> frontier;
  result.set(start);
  vid grown = 1;
  for (vid w : g.neighbors(start)) {
    if (alive.test(w)) frontier.push_back(w);
  }
  while (grown < size && !frontier.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.uniform(frontier.size()));
    const vid v = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    if (result.test(v)) continue;
    result.set(v);
    ++grown;
    for (vid w : g.neighbors(v)) {
      if (alive.test(w) && !result.test(w)) frontier.push_back(w);
    }
  }
  if (grown < size) result.clear();  // component exhausted before reaching the size
  return result;
}

std::vector<UniformProbeRecord> probe_uniform_expansion(const Graph& g, ExpansionKind kind,
                                                        const std::vector<vid>& sizes,
                                                        int samples, std::uint64_t seed) {
  FNE_REQUIRE(samples >= 1, "need at least one sample per size");
  const VertexSet all = VertexSet::full(g.num_vertices());
  Rng rng(seed);
  std::vector<UniformProbeRecord> records;
  for (vid m : sizes) {
    FNE_REQUIRE(m >= 2 && m <= g.num_vertices(), "probe size out of range");
    UniformProbeRecord rec;
    rec.subgraph_size = m;
    double worst_upper = 0.0;
    double worst_lower = 0.0;
    bool all_exact = true;
    for (int s = 0; s < samples; ++s) {
      const VertexSet sub = random_connected_set(g, all, m, rng.next());
      if (sub.empty()) continue;
      const ExpansionBracket b = expansion_bracket(g, sub, kind);
      // "Uniform expansion" is an upper-bound property (every subgraph has
      // expansion O(α(m))), so the table keeps the *largest* observed
      // bracket across samples.
      if (b.upper > worst_upper) {
        worst_upper = b.upper;
        worst_lower = b.lower;
      }
      all_exact = all_exact && b.exact;
    }
    rec.expansion_lower = worst_lower;
    rec.expansion_upper = worst_upper;
    rec.exact = all_exact;
    records.push_back(rec);
  }
  return records;
}

}  // namespace fne
