// First-improvement local refinement of a cut witness
// (Fiduccia–Mattheyses-style single-vertex moves).
#pragma once

#include "expansion/types.hpp"

namespace fne {

/// Improve `witness` by single-vertex moves until a local minimum (or
/// `max_passes` full passes).  Never returns a worse witness.
[[nodiscard]] CutWitness refine_cut(const Graph& g, const VertexSet& alive, CutWitness witness,
                                    ExpansionKind kind, int max_passes = 8);

}  // namespace fne
