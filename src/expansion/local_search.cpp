#include "expansion/local_search.hpp"

#include "expansion/cut_state.hpp"
#include "util/require.hpp"

namespace fne {

CutWitness refine_cut(const Graph& g, const VertexSet& alive, CutWitness witness,
                      ExpansionKind kind, int max_passes) {
  if (witness.side.universe_size() != g.num_vertices() || witness.side.empty()) return witness;
  CutState state(g, alive);
  witness.side.for_each([&](vid v) { state.add(v); });

  double current = state.ratio(kind);
  const std::vector<vid> verts = alive.to_vector();
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (vid v : verts) {
      state.flip(v);
      const double r = state.ratio(kind);
      if (r < current) {
        current = r;
        improved = true;
      } else {
        state.flip(v);  // revert
      }
    }
    if (!improved) break;
  }

  if (current < witness.expansion) {
    VertexSet side(g.num_vertices());
    for (vid v : verts) {
      if (state.contains(v)) side.set(v);
    }
    witness.expansion = current;
    witness.boundary = static_cast<std::size_t>(
        kind == ExpansionKind::Node ? state.out_boundary() : state.cut());
    // Report the smaller side for edge expansion.
    if (kind == ExpansionKind::Edge && 2 * side.count() > state.total_alive()) {
      side = alive - side;
    }
    witness.side = side;
  }
  return witness;
}

}  // namespace fne
