#include "expansion/workspace.hpp"

namespace fne {

void ExpansionWorkspace::reset(vid n) {
  universe_ = n;
  order.clear();
  order.reserve(n);
  queue.clear();
  queue.reserve(n);
  if (stamp.size() != n) {
    stamp.assign(n, 0);
    epoch = 0;
  }
  // The cached Fiedler vector survives reset() as long as the universe is
  // unchanged: an engine rerunning on a perturbed alive mask (fault
  // sweeps, churn rounds) may stale-sweep / warm-start from the previous
  // run's ordering.  Deterministic mode never reads it (the fast-mode
  // switches gate every consumer), so preservation cannot change
  // reference results; fast-mode candidates are validated against real
  // boundaries regardless of how stale the ordering is.
  if (static_cast<vid>(fiedler_vec.size()) != n) {
    fiedler_vec.assign(n, 0.0);
    fiedler_valid = false;
  }
  deg_alive.assign(n, 0);
  deg_alive_valid = false;
  alive_connected = false;
  subcsr.valid = false;  // per-run: the engine rebuilds it in bootstrap
  counters = WorkspaceCounters{};
}

}  // namespace fne
