#include "expansion/workspace.hpp"

namespace fne {

void ExpansionWorkspace::reset(vid n) {
  universe_ = n;
  order.clear();
  order.reserve(n);
  queue.clear();
  queue.reserve(n);
  if (stamp.size() != n) {
    stamp.assign(n, 0);
    epoch = 0;
  }
  fiedler_vec.assign(n, 0.0);
  fiedler_valid = false;
  deg_alive.assign(n, 0);
  deg_alive_valid = false;
  alive_connected = false;
}

}  // namespace fne
