// Exact expansion by exhaustive subset enumeration.
//
// A binary-reflected Gray code walks all 2^n subsets flipping one vertex
// per step; boundary-node and cut-edge counts are maintained incrementally
// in O(deg) per step, so the whole scan is O(2^n · d̄).  The scan is
// parallelized by pinning the top bits per OpenMP task.  Practical up to
// n ≈ 26; guarded by FNE_REQUIRE beyond 30.
#pragma once

#include "core/vertex_set.hpp"
#include "expansion/types.hpp"

namespace fne {

/// Maximum universe the exact scan accepts.
inline constexpr vid kExactExpansionLimit = 30;

/// Exact minimum expansion of the subgraph induced by `alive`.
/// Requires alive.count() >= 2.  Returns the optimal witness (smaller side,
/// lifted back to original vertex ids).  A disconnected subgraph yields
/// expansion 0 with a component as witness.
[[nodiscard]] CutWitness exact_expansion(const Graph& g, const VertexSet& alive,
                                         ExpansionKind kind);

/// Convenience overload over the whole graph.
[[nodiscard]] CutWitness exact_expansion(const Graph& g, ExpansionKind kind);

}  // namespace fne
