// Unit-capacity maximum flow (Dinic) and Menger-type connectivity.
//
// Used as an exact oracle for small cuts: edge connectivity certifies
// edge-expansion witnesses (a cut of c edges between any s,t pair bounds
// the global min cut), and vertex connectivity powers exact two-terminal
// node cuts.  On unit-capacity graphs Dinic runs in O(m·sqrt(m)).
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

/// Maximum number of edge-disjoint s-t paths in the alive subgraph
/// (= min s-t edge cut, by Menger).
[[nodiscard]] std::size_t max_edge_disjoint_paths(const Graph& g, const VertexSet& alive, vid s,
                                                  vid t);

/// Maximum number of internally vertex-disjoint s-t paths (= min s-t
/// vertex cut for non-adjacent s,t).  Uses the standard vertex-splitting
/// reduction.
[[nodiscard]] std::size_t max_vertex_disjoint_paths(const Graph& g, const VertexSet& alive, vid s,
                                                    vid t);

/// Global edge connectivity of the alive subgraph: min over t != s of the
/// s-t min cut (s fixed arbitrary).  Requires >= 2 alive vertices;
/// returns 0 for a disconnected subgraph.
[[nodiscard]] std::size_t edge_connectivity(const Graph& g, const VertexSet& alive);

/// Global vertex connectivity (min vertex cut) of the alive subgraph.
/// Exact via the standard non-adjacent-pairs scheme; returns
/// alive.count()-1 for complete subgraphs, 0 if disconnected.
[[nodiscard]] std::size_t vertex_connectivity(const Graph& g, const VertexSet& alive);

/// A minimum s-t vertex separator (Menger witness): a set C of vertices
/// with s, t ∉ C whose removal disconnects s from t, |C| =
/// max_vertex_disjoint_paths(s, t).  Requires non-adjacent s, t.
[[nodiscard]] VertexSet min_vertex_separator(const Graph& g, const VertexSet& alive, vid s,
                                             vid t);

}  // namespace fne
