// Sweep cuts: evaluate every prefix of a vertex ordering as a candidate
// low-expansion set.  With the Fiedler ordering this is the classic
// constructive half of Cheeger's inequality.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "expansion/types.hpp"
#include "expansion/workspace.hpp"
#include "spectral/lanczos.hpp"

namespace fne {

struct SweepOptions {
  /// Stop the sweep at the first candidate whose ratio is at or below this
  /// value and return it.  The default (+inf) evaluates every prefix and
  /// returns the global best — the reference behavior.  A finite value is
  /// only useful to a caller (the prune loop) for which *any* violating
  /// set is as good as the best one.
  double early_exit_threshold = std::numeric_limits<double>::infinity();
  /// Optional buffer pool; also supplies the alive-degree cache to
  /// CutState when its deg_alive_valid flag is set.
  ExpansionWorkspace* ws = nullptr;
};

/// Best cut over all prefixes (and, for node expansion, suffixes) of
/// `order`, which must list alive vertices exactly once.
[[nodiscard]] CutWitness sweep_cut(const Graph& g, const VertexSet& alive,
                                   const std::vector<vid>& order, ExpansionKind kind,
                                   const SweepOptions& options);
[[nodiscard]] CutWitness sweep_cut(const Graph& g, const VertexSet& alive,
                                   const std::vector<vid>& order, ExpansionKind kind);

/// Sweep the ordering induced by sorting the alive vertices by
/// `values[v]` ascending (ties by vertex id).  The single definition of
/// value-ordered sweeping — the Fiedler sweep and the engine's
/// stale-vector fast path both route through it, so ordering and
/// tie-breaking can never diverge between them.
[[nodiscard]] CutWitness sweep_by_values(const Graph& g, const VertexSet& alive,
                                         ExpansionKind kind, const std::vector<double>& values,
                                         const SweepOptions& options);

struct FiedlerSweepOptions {
  std::uint64_t seed = 7;
  /// Seed the eigensolve from the workspace's cached Fiedler vector
  /// (requires `ws` with fiedler_valid).  Cuts Lanczos iterations sharply
  /// when the alive mask shrank only slightly since the cached solve, at
  /// the cost of bit-exact reproducibility of the resulting ordering.
  bool warm_start = false;
  double early_exit_threshold = std::numeric_limits<double>::infinity();
  /// Buffer pool and Fiedler-vector cache.  When non-null the solve's
  /// resulting vector is stored back into it (fiedler_valid set).
  ExpansionWorkspace* ws = nullptr;
  /// Eigensolve acceleration, forwarded to FiedlerOptions (DESIGN.md §10).
  SpectralAccel accel = SpectralAccel{SpectralMode::kAuto};
};

/// Sweep over the Fiedler-vector ordering of the alive subgraph.
[[nodiscard]] CutWitness fiedler_sweep(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                                       const FiedlerSweepOptions& options);
[[nodiscard]] CutWitness fiedler_sweep(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                                       std::uint64_t seed = 7);

}  // namespace fne
