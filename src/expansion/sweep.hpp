// Sweep cuts: evaluate every prefix of a vertex ordering as a candidate
// low-expansion set.  With the Fiedler ordering this is the classic
// constructive half of Cheeger's inequality.
#pragma once

#include <cstdint>
#include <vector>

#include "expansion/types.hpp"

namespace fne {

/// Best cut over all prefixes (and, for node expansion, suffixes) of
/// `order`, which must list alive vertices exactly once.
[[nodiscard]] CutWitness sweep_cut(const Graph& g, const VertexSet& alive,
                                   const std::vector<vid>& order, ExpansionKind kind);

/// Sweep over the Fiedler-vector ordering of the alive subgraph.
[[nodiscard]] CutWitness fiedler_sweep(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                                       std::uint64_t seed = 7);

}  // namespace fne
