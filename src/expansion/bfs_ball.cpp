#include "expansion/bfs_ball.hpp"

#include <deque>

#include "expansion/sweep.hpp"
#include "util/rng.hpp"

namespace fne {

namespace {

/// BFS visitation order restricted to the alive mask, starting at source.
std::vector<vid> bfs_order(const Graph& g, const VertexSet& alive, vid source) {
  std::vector<vid> order;
  order.reserve(alive.count());
  VertexSet seen(g.num_vertices());
  std::deque<vid> queue{source};
  seen.set(source);
  while (!queue.empty()) {
    const vid u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (vid w : g.neighbors(u)) {
      if (alive.test(w) && !seen.test(w)) {
        seen.set(w);
        queue.push_back(w);
      }
    }
  }
  // Unreached alive vertices (disconnected subgraph) go last; every prefix
  // containing a full component yields cut 0 and is found by the sweep.
  alive.for_each([&](vid v) {
    if (!seen.test(v)) order.push_back(v);
  });
  return order;
}

}  // namespace

CutWitness best_ball_cut(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                         vid max_sources, std::uint64_t seed) {
  const std::vector<vid> candidates = alive.to_vector();
  Rng rng(seed);
  std::vector<vid> sources;
  if (candidates.size() <= max_sources) {
    sources = candidates;
  } else {
    const auto picks = rng.sample_without_replacement(static_cast<vid>(candidates.size()),
                                                      max_sources);
    sources.reserve(picks.size());
    for (vid i : picks) sources.push_back(candidates[i]);
  }

  CutWitness best;
  for (vid s : sources) {
    const CutWitness w = sweep_cut(g, alive, bfs_order(g, alive, s), kind);
    if (w.expansion < best.expansion) best = w;
  }
  return best;
}

}  // namespace fne
