#include "expansion/bfs_ball.hpp"

#include <deque>

#include "util/rng.hpp"

namespace fne {

namespace {

/// BFS visitation order restricted to the alive mask, starting at source.
std::vector<vid> bfs_order(const Graph& g, const VertexSet& alive, vid source) {
  std::vector<vid> order;
  order.reserve(alive.count());
  VertexSet seen(g.num_vertices());
  std::deque<vid> queue{source};
  seen.set(source);
  while (!queue.empty()) {
    const vid u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (vid w : g.neighbors(u)) {
      if (alive.test(w) && !seen.test(w)) {
        seen.set(w);
        queue.push_back(w);
      }
    }
  }
  // Unreached alive vertices (disconnected subgraph) go last; every prefix
  // containing a full component yields cut 0 and is found by the sweep.
  alive.for_each([&](vid v) {
    if (!seen.test(v)) order.push_back(v);
  });
  return order;
}

/// Allocation-free variant: the FIFO queue doubles as the visitation order
/// (append-only, popped by index), visited marks are workspace epochs.
void bfs_order_pooled(const Graph& g, const VertexSet& alive, vid source,
                      ExpansionWorkspace& ws, std::vector<vid>& order) {
  order.clear();
  ws.next_epoch();
  ws.mark(source);
  order.push_back(source);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const vid u = order[head];
    for (vid w : g.neighbors(u)) {
      if (alive.test(w) && !ws.marked(w)) {
        ws.mark(w);
        order.push_back(w);
      }
    }
  }
  alive.for_each([&](vid v) {
    if (!ws.marked(v)) order.push_back(v);
  });
}

}  // namespace

CutWitness best_ball_cut(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                         vid max_sources, std::uint64_t seed,
                         const SweepOptions& sweep_options) {
  const std::vector<vid> candidates = alive.to_vector();
  Rng rng(seed);
  std::vector<vid> sources;
  if (candidates.size() <= max_sources) {
    sources = candidates;
  } else {
    const auto picks = rng.sample_without_replacement(static_cast<vid>(candidates.size()),
                                                      max_sources);
    sources.reserve(picks.size());
    for (vid i : picks) sources.push_back(candidates[i]);
  }

  ExpansionWorkspace* ws = sweep_options.ws;
  CutWitness best;
  for (vid s : sources) {
    CutWitness w;
    if (ws != nullptr && ws->universe_size() == g.num_vertices()) {
      bfs_order_pooled(g, alive, s, *ws, ws->queue);
      w = sweep_cut(g, alive, ws->queue, kind, sweep_options);
    } else {
      w = sweep_cut(g, alive, bfs_order(g, alive, s), kind, sweep_options);
    }
    if (w.expansion < best.expansion) best = w;
    if (sweep_options.early_exit_threshold != std::numeric_limits<double>::infinity() &&
        best.expansion <= sweep_options.early_exit_threshold) {
      break;
    }
  }
  return best;
}

CutWitness best_ball_cut(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                         vid max_sources, std::uint64_t seed) {
  return best_ball_cut(g, alive, kind, max_sources, seed, SweepOptions{});
}

}  // namespace fne
