// BFS-order sweep cuts ("ball cuts").
//
// Sweeping the BFS visitation order from a source evaluates every ball
// around it (plus partially-filled layers).  On meshes these discover the
// corner/halfspace cuts that achieve the true expansion; they complement
// the Fiedler sweep on graphs whose λ₂ eigenspace is degenerate.
#pragma once

#include <cstdint>

#include "expansion/sweep.hpp"
#include "expansion/types.hpp"

namespace fne {

/// Best BFS-sweep cut over up to `max_sources` alive sources (sampled
/// deterministically from `seed`; all alive vertices if fewer).  With a
/// finite early_exit_threshold in `sweep_options` the scan stops at the
/// first source whose sweep reaches the threshold.
[[nodiscard]] CutWitness best_ball_cut(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                                       vid max_sources, std::uint64_t seed,
                                       const SweepOptions& sweep_options);
[[nodiscard]] CutWitness best_ball_cut(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                                       vid max_sources, std::uint64_t seed);

}  // namespace fne
