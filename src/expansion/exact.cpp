#include "expansion/exact.hpp"

#include <array>
#include <cstdint>

#include "core/subgraph.hpp"
#include "util/require.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fne {

namespace {

/// State of one Gray-code strand: incremental subset counters over a
/// <=30-vertex graph whose adjacency is stored as bitmasks.
struct ScanState {
  const std::vector<std::uint32_t>* adj = nullptr;
  std::uint32_t in_s = 0;         // membership bitmask
  int size = 0;                   // |S|
  std::array<int, 32> cnt{};      // cnt[v] = #neighbors of v in S
  long long cut = 0;              // |(S, V\S)|
  int boundary = 0;               // |{v not in S : cnt[v] > 0}|

  void flip(int v) {
    const std::uint32_t bit = std::uint32_t{1} << v;
    const bool entering = (in_s & bit) == 0;
    if (entering) {
      // v joins S.  Its boundary status (as an outside vertex) disappears.
      if (cnt[static_cast<std::size_t>(v)] > 0) --boundary;
      std::uint32_t nb = (*adj)[static_cast<std::size_t>(v)];
      while (nb != 0) {
        const int w = __builtin_ctz(nb);
        nb &= nb - 1;
        const bool w_in = (in_s >> w) & 1U;
        if (w_in) {
          --cut;  // edge (v, w) becomes internal
        } else {
          ++cut;  // edge (v, w) becomes crossing
          if (cnt[static_cast<std::size_t>(w)] == 0) ++boundary;
        }
        ++cnt[static_cast<std::size_t>(w)];
      }
      in_s |= bit;
      ++size;
    } else {
      in_s &= ~bit;
      --size;
      std::uint32_t nb = (*adj)[static_cast<std::size_t>(v)];
      while (nb != 0) {
        const int w = __builtin_ctz(nb);
        nb &= nb - 1;
        --cnt[static_cast<std::size_t>(w)];
        const bool w_in = (in_s >> w) & 1U;
        if (w_in) {
          ++cut;  // edge (v, w) becomes crossing again
        } else {
          --cut;
          if (cnt[static_cast<std::size_t>(w)] == 0) --boundary;
        }
      }
      if (cnt[static_cast<std::size_t>(v)] > 0) ++boundary;  // v is outside and adjacent to S
    }
  }

  void init(std::uint32_t mask, int n) {
    in_s = 0;
    size = 0;
    cnt.fill(0);
    cut = 0;
    boundary = 0;
    for (int v = 0; v < n; ++v) {
      if ((mask >> v) & 1U) flip(v);
    }
  }
};

struct Best {
  double ratio = std::numeric_limits<double>::infinity();
  std::uint32_t mask = 0;
  long long boundary = 0;
};

void consider(const ScanState& st, int n, ExpansionKind kind, Best& best) {
  if (st.size == 0 || st.size == n) return;
  if (kind == ExpansionKind::Node) {
    if (2 * st.size > n) return;  // α minimizes over |U| <= n/2 only
    const double r = static_cast<double>(st.boundary) / static_cast<double>(st.size);
    if (r < best.ratio) {
      best.ratio = r;
      best.mask = st.in_s;
      best.boundary = st.boundary;
    }
  } else {
    const int denom = st.size < n - st.size ? st.size : n - st.size;
    const double r = static_cast<double>(st.cut) / static_cast<double>(denom);
    if (r < best.ratio) {
      best.ratio = r;
      best.mask = st.in_s;
      best.boundary = st.cut;
    }
  }
}

}  // namespace

CutWitness exact_expansion(const Graph& g, const VertexSet& alive, ExpansionKind kind) {
  const vid k = alive.count();
  FNE_REQUIRE(k >= 2, "expansion needs >= 2 vertices");
  FNE_REQUIRE(k <= kExactExpansionLimit, "exact expansion limited to small graphs");
  const InducedSubgraph sub = induced_subgraph(g, alive);
  const int n = static_cast<int>(k);

  std::vector<std::uint32_t> adj(static_cast<std::size_t>(n), 0);
  for (const Edge& e : sub.graph.edges()) {
    adj[e.u] |= std::uint32_t{1} << e.v;
    adj[e.v] |= std::uint32_t{1} << e.u;
  }

  // Pin the top `t` bits per strand; Gray-enumerate the rest.
  const int t = n >= 18 ? 3 : 0;
  const int low = n - t;
  const std::uint32_t strands = std::uint32_t{1} << t;
  const std::uint64_t steps = std::uint64_t{1} << low;

  std::vector<Best> bests(strands);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1)
#endif
  for (std::uint32_t c = 0; c < strands; ++c) {
    ScanState st;
    st.adj = &adj;
    st.init(c << low, n);
    Best& best = bests[c];
    consider(st, n, kind, best);
    for (std::uint64_t i = 1; i < steps; ++i) {
      st.flip(__builtin_ctzll(i));
      consider(st, n, kind, best);
    }
  }

  Best overall;
  for (const Best& b : bests) {
    if (b.ratio < overall.ratio) overall = b;
  }

  // Lift the winning mask back to original ids; report the smaller side.
  std::uint32_t mask = overall.mask;
  const int sz = __builtin_popcount(mask);
  if (kind == ExpansionKind::Edge && 2 * sz > n) {
    mask = ~mask & ((n == 32 ? 0U : (std::uint32_t{1} << n)) - 1U);
  }
  CutWitness witness;
  witness.expansion = overall.ratio;
  witness.boundary = static_cast<std::size_t>(overall.boundary);
  VertexSet side(sub.graph.num_vertices());
  for (int v = 0; v < n; ++v) {
    if ((mask >> v) & 1U) side.set(static_cast<vid>(v));
  }
  witness.side = sub.lift(side);
  return witness;
}

CutWitness exact_expansion(const Graph& g, ExpansionKind kind) {
  return exact_expansion(g, VertexSet::full(g.num_vertices()), kind);
}

}  // namespace fne
