// Certified expansion brackets: [provable lower bound, constructive upper
// bound].  See DESIGN.md §4 ("certified brackets instead of point
// estimates") — the paper's own remark that no constant-factor expansion
// approximation is known is why every large-graph quantity in this
// library is a bracket.
#pragma once

#include <cstdint>

#include "expansion/types.hpp"

namespace fne {

struct BracketOptions {
  vid exact_limit = 22;      ///< use exhaustive enumeration up to this size
  vid ball_sources = 16;     ///< BFS-sweep sources
  int refine_passes = 8;     ///< local-search passes on the best witness
  std::uint64_t seed = 7;
};

/// Bracket the expansion of the subgraph induced by `alive`.
/// Disconnected subgraphs get an exact 0 bracket with a witness component.
[[nodiscard]] ExpansionBracket expansion_bracket(const Graph& g, const VertexSet& alive,
                                                 ExpansionKind kind,
                                                 const BracketOptions& options = {});

[[nodiscard]] ExpansionBracket expansion_bracket(const Graph& g, ExpansionKind kind,
                                                 const BracketOptions& options = {});

}  // namespace fne
