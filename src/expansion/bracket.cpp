#include "expansion/bracket.hpp"

#include <algorithm>

#include "core/subgraph.hpp"
#include "core/traversal.hpp"
#include "expansion/bfs_ball.hpp"
#include "expansion/exact.hpp"
#include "expansion/local_search.hpp"
#include "expansion/sweep.hpp"
#include "spectral/cheeger.hpp"
#include "spectral/fiedler.hpp"
#include "util/require.hpp"

namespace fne {

ExpansionBracket expansion_bracket(const Graph& g, const VertexSet& alive, ExpansionKind kind,
                                   const BracketOptions& options) {
  const vid k = alive.count();
  FNE_REQUIRE(k >= 2, "expansion bracket needs >= 2 vertices");
  ExpansionBracket bracket;

  // Disconnected: expansion is exactly 0, witnessed by the pieces other
  // than the largest component (size <= half is guaranteed for at least
  // one component choice).
  const Components comps = connected_components(g, alive);
  if (comps.count() > 1) {
    bracket.lower = 0.0;
    bracket.upper = 0.0;
    bracket.exact = true;
    CutWitness witness;
    // Pick the smallest component: always <= half of the alive set.
    std::uint32_t best_label = 0;
    for (std::uint32_t c = 1; c < comps.sizes.size(); ++c) {
      if (comps.sizes[c] < comps.sizes[best_label]) best_label = c;
    }
    witness.side = VertexSet(g.num_vertices());
    alive.for_each([&](vid v) {
      if (comps.label[v] == best_label) witness.side.set(v);
    });
    witness.expansion = 0.0;
    witness.boundary = 0;
    bracket.witness = witness;
    return bracket;
  }

  if (k <= options.exact_limit && k <= kExactExpansionLimit) {
    const CutWitness witness = exact_expansion(g, alive, kind);
    bracket.lower = witness.expansion;
    bracket.upper = witness.expansion;
    bracket.witness = witness;
    bracket.exact = true;
    return bracket;
  }

  // Lower bound: Cheeger from λ₂ of the induced Laplacian.
  const FiedlerResult fiedler = fiedler_vector(g, alive, options.seed);
  vid max_deg = 0;
  alive.for_each([&](vid v) {
    vid d = 0;
    for (vid w : g.neighbors(v)) {
      if (alive.test(w)) ++d;
    }
    max_deg = std::max(max_deg, d);
  });
  const CheegerBounds cheeger = cheeger_lower_bounds(std::max(0.0, fiedler.lambda2), max_deg);
  bracket.lower =
      kind == ExpansionKind::Edge ? cheeger.edge_expansion_lower : cheeger.node_expansion_lower;
  if (!fiedler.converged) bracket.lower = 0.0;  // can't certify an unconverged λ₂

  // Upper bound: best constructive cut (Fiedler sweep + BFS-ball sweeps),
  // refined by local search.
  std::vector<vid> order = alive.to_vector();
  std::stable_sort(order.begin(), order.end(),
                   [&](vid a, vid b) { return fiedler.vector[a] < fiedler.vector[b]; });
  CutWitness best = sweep_cut(g, alive, order, kind);
  const CutWitness ball = best_ball_cut(g, alive, kind, options.ball_sources, options.seed);
  if (ball.expansion < best.expansion) best = ball;
  best = refine_cut(g, alive, std::move(best), kind, options.refine_passes);

  bracket.upper = best.expansion;
  bracket.witness = best;
  // Numerical guard: a converged λ₂ bound can exceed the heuristic cut by
  // rounding; clamp so lower <= upper always holds.
  bracket.lower = std::min(bracket.lower, bracket.upper);
  return bracket;
}

ExpansionBracket expansion_bracket(const Graph& g, ExpansionKind kind,
                                   const BracketOptions& options) {
  return expansion_bracket(g, VertexSet::full(g.num_vertices()), kind, options);
}

}  // namespace fne
