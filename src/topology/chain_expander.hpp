// The chain-replacement construction of Theorem 2.3 / Claim 2.4 / Theorem 3.1.
//
// Given a base graph G (intended: a constant-degree expander) and an even
// chain length k, H(G, k) replaces every edge {u, v} of G by a path
//     u - c_1 - c_2 - ... - c_k - v
// of k fresh interior "chain" vertices.  The paper proves:
//   * Claim 2.4:   H has node expansion Θ(1/k);
//   * Theorem 2.3: removing the k/2-th (central) vertex of every chain —
//     delta/2 · n = Θ(α · N) adversarial faults, N = |H| — shatters H into
//     sublinear components;
//   * Theorem 3.1: random faults with probability Θ(1/k) shatter H too.
//
// The struct records which vertices are originals, which are chain
// interiors, and the center of every chain so the Theorem 2.3 adversary
// can be implemented verbatim.
#pragma once

#include <vector>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct ChainExpander {
  Graph graph;                    ///< H(G, k)
  vid base_n = 0;                 ///< |V(G)|; vertices [0, base_n) are the originals
  vid chain_len = 0;              ///< k
  std::vector<vid> chain_center;  ///< per base edge: id of the central chain vertex
  std::vector<std::vector<vid>> chain_vertices;  ///< per base edge: the k interior ids in order

  [[nodiscard]] bool is_original(vid v) const noexcept { return v < base_n; }
  /// The set of all chain centers (the Theorem 2.3 fault set).
  [[nodiscard]] VertexSet center_set() const;
};

/// Build H(G, k).  k must be even and >= 2 (paper: "chain of k nodes,
/// where k is even").
[[nodiscard]] ChainExpander chain_replace(const Graph& base, vid k);

}  // namespace fne
