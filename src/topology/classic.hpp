// Elementary graph families used as test fixtures and percolation
// baselines (paper §1.1: complete graph p* = 1/(n-1)).
#pragma once

#include "core/graph.hpp"

namespace fne {

[[nodiscard]] Graph path_graph(vid n);
[[nodiscard]] Graph cycle_graph(vid n);
[[nodiscard]] Graph complete_graph(vid n);
[[nodiscard]] Graph star_graph(vid n);  ///< vertex 0 is the hub

/// Two cliques of size n/2 joined by a single edge: the paper's §1.3
/// "just a single line connects one half to the other" pathology.
[[nodiscard]] Graph barbell_graph(vid half);

}  // namespace fne
