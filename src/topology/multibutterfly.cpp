#include "topology/multibutterfly.hpp"

#include "core/traversal.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

VertexSet Multibutterfly::inputs() const {
  VertexSet s(graph.num_vertices());
  for (vid r = 0; r < rows; ++r) s.set(id_of(0, r));
  return s;
}

VertexSet Multibutterfly::outputs() const {
  VertexSet s(graph.num_vertices());
  for (vid r = 0; r < rows; ++r) s.set(id_of(dims, r));
  return s;
}

Multibutterfly multibutterfly(vid dims, vid splitter_degree, std::uint64_t seed) {
  FNE_REQUIRE(dims >= 1 && dims <= 16, "multibutterfly dims in [1, 16]");
  FNE_REQUIRE(splitter_degree >= 1, "splitter degree must be >= 1");
  Multibutterfly mb;
  mb.dims = dims;
  mb.rows = vid{1} << dims;
  mb.levels = dims + 1;
  mb.splitter_degree = splitter_degree;

  Rng rng(seed);
  std::vector<Edge> edges;
  // Level l: blocks of size rows / 2^l share the top l row bits.  A node
  // (l, r) connects into the two half-blocks at level l+1 distinguished
  // by bit (dims - 1 - l) — the same bit the plain butterfly routes on.
  for (vid l = 0; l < dims; ++l) {
    const vid block_size = mb.rows >> l;
    const vid half = block_size / 2;
    const vid routing_bit = dims - 1 - l;
    const vid d = std::min(splitter_degree, half);
    for (vid block_start = 0; block_start < mb.rows; block_start += block_size) {
      for (vid offset = 0; offset < block_size; ++offset) {
        const vid r = block_start + offset;
        for (int direction = 0; direction < 2; ++direction) {
          // Rows of the target half-block: same block, routing bit fixed.
          const auto picks = rng.sample_without_replacement(half, d);
          for (vid p : picks) {
            // Enumerate the half-block: rows in [block_start, +block_size)
            // whose routing bit equals `direction`.  Row index p within
            // the half maps to an offset with the routing bit forced.
            const vid low_mask = (vid{1} << routing_bit) - 1;
            const vid low = p & low_mask;
            const vid high = (p & ~low_mask) << 1;
            const vid target_offset =
                high | (static_cast<vid>(direction) << routing_bit) | low;
            edges.push_back({mb.id_of(l, r), mb.id_of(l + 1, block_start + target_offset)});
          }
        }
      }
    }
  }
  mb.graph = Graph::from_edges(mb.levels * mb.rows, std::move(edges));
  return mb;
}

IoConnectivity io_connectivity(const Graph& g, const VertexSet& alive, const VertexSet& inputs,
                               const VertexSet& outputs) {
  IoConnectivity result;
  const Components comps = connected_components(g, alive);
  if (comps.count() == 0) return result;
  const std::uint32_t big = comps.largest_label();
  result.largest_component = comps.sizes[big];
  inputs.for_each_in_both(alive, [&](vid v) {
    if (comps.label[v] == big) ++result.inputs_connected;
  });
  outputs.for_each_in_both(alive, [&](vid v) {
    if (comps.label[v] == big) ++result.outputs_connected;
  });
  return result;
}

}  // namespace fne
