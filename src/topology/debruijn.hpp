// The binary de Bruijn network DB(d) on 2^d vertices (paper §4 span
// conjecture): x is adjacent to its shuffles (2x mod 2^d) and
// (2x + 1 mod 2^d).  We build the undirected simple version.
//
// Vertex-count contract: debruijn(dims) returns exactly 2^dims vertices
// (dims in [2, 26]); registered as topology "debruijn" with the contract
// enforced by TopologyRegistry::build (api/registry.hpp).
#pragma once

#include "core/graph.hpp"

namespace fne {

[[nodiscard]] Graph debruijn(vid dims);

}  // namespace fne
