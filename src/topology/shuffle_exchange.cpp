#include "topology/shuffle_exchange.hpp"

#include "util/require.hpp"

namespace fne {

Graph shuffle_exchange(vid dims) {
  FNE_REQUIRE(dims >= 2 && dims <= 26, "shuffle-exchange dimension must be in [2, 26]");
  const vid n = vid{1} << dims;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (vid v = 0; v < n; ++v) {
    edges.push_back({v, v ^ 1});  // exchange
    const vid shuffled = ((v << 1) | (v >> (dims - 1))) & (n - 1);
    if (v != shuffled) edges.push_back({v, shuffled});  // shuffle
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace fne
