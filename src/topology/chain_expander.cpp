#include "topology/chain_expander.hpp"

#include "util/require.hpp"

namespace fne {

VertexSet ChainExpander::center_set() const {
  VertexSet centers(graph.num_vertices());
  for (vid c : chain_center) centers.set(c);
  return centers;
}

ChainExpander chain_replace(const Graph& base, vid k) {
  FNE_REQUIRE(k >= 2 && k % 2 == 0, "chain length k must be even and >= 2");
  ChainExpander h;
  h.base_n = base.num_vertices();
  h.chain_len = k;
  const eid m = base.num_edges();
  const std::size_t total = static_cast<std::size_t>(h.base_n) + static_cast<std::size_t>(m) * k;
  FNE_REQUIRE(total < (std::size_t{1} << 31), "chain expander too large");

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m) * (k + 1));
  h.chain_center.reserve(m);
  h.chain_vertices.reserve(m);
  vid next_id = h.base_n;
  for (eid e = 0; e < m; ++e) {
    const Edge be = base.edge(e);
    std::vector<vid> chain(k);
    for (vid i = 0; i < k; ++i) chain[i] = next_id++;
    edges.push_back({be.u, chain.front()});
    for (vid i = 0; i + 1 < k; ++i) edges.push_back({chain[i], chain[i + 1]});
    edges.push_back({chain.back(), be.v});
    // Central vertex: position k/2 (0-indexed), i.e. the (k/2+1)-th node.
    // Removing it splits the chain into halves of k/2 and k/2 - 1 interior
    // vertices attached to u and v respectively.
    h.chain_center.push_back(chain[k / 2]);
    h.chain_vertices.push_back(std::move(chain));
  }
  h.graph = Graph::from_edges(static_cast<vid>(total), std::move(edges));
  return h;
}

}  // namespace fne
