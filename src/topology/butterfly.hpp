// Butterfly networks (paper §1.1: Karlin–Nelson–Tamaki bound
// 0.337 < p* < 0.436; §4 span conjecture).
//
// The d-dimensional (unwrapped) butterfly BF(d) has (d+1)·2^d vertices
// (level, row) with level ∈ [0, d], row ∈ [0, 2^d); (l, r) is adjacent to
// (l+1, r) (straight edge) and (l+1, r ⊕ 2^l) (cross edge).
// The wrapped butterfly identifies level d with level 0, giving d·2^d
// vertices of uniform degree 4.
#pragma once

#include "core/graph.hpp"

namespace fne {

struct Butterfly {
  Graph graph;
  vid dims = 0;    ///< d
  vid levels = 0;  ///< d+1 unwrapped, d wrapped
  vid rows = 0;    ///< 2^d

  [[nodiscard]] vid id_of(vid level, vid row) const noexcept { return level * rows + row; }
  [[nodiscard]] vid level_of(vid v) const noexcept { return v / rows; }
  [[nodiscard]] vid row_of(vid v) const noexcept { return v % rows; }
};

[[nodiscard]] Butterfly butterfly(vid dims, bool wrapped = false);

}  // namespace fne
