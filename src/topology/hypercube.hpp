// The d-dimensional hypercube Q_d: 2^d vertices, edges between ids at
// Hamming distance 1 (paper §1.1: p* = 1/d, Ajtai–Komlós–Szemerédi).
//
// Vertex-count contract: hypercube(dims) returns exactly 2^dims vertices
// (dims in [1, 26]); registered as topology "hypercube" with the
// contract enforced by TopologyRegistry::build.
#pragma once

#include "core/graph.hpp"

namespace fne {

[[nodiscard]] Graph hypercube(vid dims);

}  // namespace fne
