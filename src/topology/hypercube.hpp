// The d-dimensional hypercube Q_d: 2^d vertices, edges between ids at
// Hamming distance 1 (paper §1.1: p* = 1/d, Ajtai–Komlós–Szemerédi).
#pragma once

#include "core/graph.hpp"

namespace fne {

[[nodiscard]] Graph hypercube(vid dims);

}  // namespace fne
