#include "topology/butterfly.hpp"

#include "util/require.hpp"

namespace fne {

Butterfly butterfly(vid dims, bool wrapped) {
  FNE_REQUIRE(dims >= 1 && dims <= 22, "butterfly dimension must be in [1, 22]");
  Butterfly bf;
  bf.dims = dims;
  bf.rows = vid{1} << dims;
  bf.levels = wrapped ? dims : dims + 1;
  const vid n = bf.levels * bf.rows;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (vid level = 0; level < bf.levels; ++level) {
    const bool last = (level + 1 == bf.levels);
    if (last && !wrapped) break;
    const vid next = wrapped ? (level + 1) % bf.levels : level + 1;
    for (vid row = 0; row < bf.rows; ++row) {
      const vid a = bf.id_of(level, row);
      edges.push_back({a, bf.id_of(next, row)});
      edges.push_back({a, bf.id_of(next, row ^ (vid{1} << level))});
    }
  }
  bf.graph = Graph::from_edges(n, std::move(edges));
  return bf;
}

}  // namespace fne
