// The shuffle-exchange network SE(d) on 2^d vertices (paper §4 span
// conjecture): x is adjacent to x ⊕ 1 (exchange) and to its cyclic left
// shift (shuffle).  Undirected simple version.
//
// Vertex-count contract: shuffle_exchange(dims) returns exactly 2^dims
// vertices (dims in [2, 26]); registered as topology "shuffle_exchange"
// with the contract enforced by TopologyRegistry::build.
#pragma once

#include "core/graph.hpp"

namespace fne {

[[nodiscard]] Graph shuffle_exchange(vid dims);

}  // namespace fne
