// A CAN-style content-addressable-network overlay (paper §4: "CAN ...
// behaves like a d-dimensional mesh in its steady state").
//
// The d-dimensional unit torus is partitioned into axis-aligned zones by
// successive random joins, exactly as in Ratnasamy et al. (SIGCOMM 2001):
// a joining peer picks a uniform random point and splits the zone that
// owns it in half along the dimension that zone last split cycles to.
// Two zones are neighbors when they abut along one dimension (modulo
// wrap) and their projections overlap in every other dimension.
//
// Coordinates are integers at resolution 2^max_depth per dimension so the
// construction is exact (no floating-point zone bounds).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"

namespace fne {

struct CanZone {
  std::vector<std::uint32_t> lo;    ///< per-dimension lower corner
  std::vector<std::uint32_t> size;  ///< per-dimension extent (power of two)
  vid next_split_dim = 0;
};

struct CanOverlay {
  Graph graph;  ///< zone adjacency graph (one vertex per peer/zone)
  std::vector<CanZone> zones;
  vid dims = 0;
};

/// Build an overlay with `peers` zones on a d-dimensional torus.
[[nodiscard]] CanOverlay can_overlay(vid peers, vid dims, std::uint64_t seed,
                                     vid max_depth = 20);

}  // namespace fne
