// Multibutterfly networks (paper §1.1: Leighton–Maggs — "no matter how
// an adversary chooses f nodes to fail, there will be a connected
// component left in the multibutterfly with at least n - O(f) inputs and
// n - O(f) outputs").
//
// Structure: log2(n)+1 levels of n nodes.  At level l the rows split
// into 2^l blocks; within a block, each node connects to `splitter_degree`
// random distinct nodes of the "up" half-block at level l+1 (next-row-bit
// 0) and the same number in the "down" half-block (bit 1).  The random
// splitters are expanders whp, which is exactly what gives the network
// its adversarial fault tolerance; the plain butterfly is the degenerate
// splitter_degree = 1 case with deterministic matchings.
#pragma once

#include <cstdint>

#include "core/graph.hpp"
#include "core/vertex_set.hpp"

namespace fne {

struct Multibutterfly {
  Graph graph;
  vid dims = 0;             ///< log2(rows)
  vid levels = 0;           ///< dims + 1
  vid rows = 0;             ///< n = 2^dims inputs/outputs
  vid splitter_degree = 0;  ///< d random edges into each half-block

  [[nodiscard]] vid id_of(vid level, vid row) const noexcept { return level * rows + row; }
  [[nodiscard]] vid level_of(vid v) const noexcept { return v / rows; }
  [[nodiscard]] vid row_of(vid v) const noexcept { return v % rows; }
  /// Level-0 nodes.
  [[nodiscard]] VertexSet inputs() const;
  /// Level-`dims` nodes.
  [[nodiscard]] VertexSet outputs() const;
};

/// Build a multibutterfly with 2^dims rows and the given splitter degree
/// (>= 2 for the expander property; degree is capped by half-block size).
[[nodiscard]] Multibutterfly multibutterfly(vid dims, vid splitter_degree, std::uint64_t seed);

/// Input/output connectivity census (the §1.1 metric): how many inputs
/// and outputs lie in the largest surviving component.
struct IoConnectivity {
  vid inputs_connected = 0;
  vid outputs_connected = 0;
  vid largest_component = 0;
};
[[nodiscard]] IoConnectivity io_connectivity(const Graph& g, const VertexSet& alive,
                                             const VertexSet& inputs, const VertexSet& outputs);

}  // namespace fne
