#include "topology/mesh.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace fne {

Mesh::Mesh(std::vector<vid> sides, bool wrap) : sides_(std::move(sides)), wrap_(wrap) {
  FNE_REQUIRE(!sides_.empty(), "mesh needs at least one dimension");
  std::size_t n = 1;
  for (vid s : sides_) {
    FNE_REQUIRE(s >= 1, "mesh side must be >= 1");
    n *= s;
    FNE_REQUIRE(n < (std::size_t{1} << 31), "mesh too large for 32-bit ids");
  }
  strides_.resize(sides_.size());
  std::size_t stride = 1;
  for (std::size_t d = sides_.size(); d-- > 0;) {
    strides_[d] = static_cast<vid>(stride);
    stride *= sides_[d];
  }
  std::vector<Edge> edges;
  edges.reserve(n * sides_.size());
  for (vid v = 0; v < static_cast<vid>(n); ++v) {
    for (vid d = 0; d < dims(); ++d) {
      const vid c = coord(v, d);
      if (c + 1 < sides_[d]) {
        edges.push_back({v, v + strides_[d]});
      } else if (wrap_ && sides_[d] > 2) {
        // wrap edge back to coordinate 0 (sides <= 2 would duplicate)
        edges.push_back({v, v - (sides_[d] - 1) * strides_[d]});
      }
    }
  }
  graph_ = Graph::from_edges(static_cast<vid>(n), std::move(edges));
}

Mesh Mesh::cube(vid side, vid dims, bool wrap) {
  return Mesh(std::vector<vid>(dims, side), wrap);
}

vid Mesh::id_of(const std::vector<vid>& coords) const {
  FNE_REQUIRE(coords.size() == sides_.size(), "coordinate dimensionality mismatch");
  vid v = 0;
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    FNE_REQUIRE(coords[d] < sides_[d], "coordinate out of range");
    v += coords[d] * strides_[d];
  }
  return v;
}

std::vector<vid> Mesh::coords_of(vid v) const {
  std::vector<vid> coords(sides_.size());
  for (std::size_t d = 0; d < sides_.size(); ++d) {
    coords[d] = (v / strides_[d]) % sides_[d];
  }
  return coords;
}

vid Mesh::coord(vid v, vid dim) const { return (v / strides_[dim]) % sides_[dim]; }

vid Mesh::chebyshev_distance(vid a, vid b) const {
  vid best = 0;
  for (vid d = 0; d < dims(); ++d) {
    const vid ca = coord(a, d);
    const vid cb = coord(b, d);
    vid delta = ca > cb ? ca - cb : cb - ca;
    if (wrap_) delta = std::min(delta, sides_[d] - delta);
    best = std::max(best, delta);
  }
  return best;
}

vid Mesh::hamming_dims(vid a, vid b) const {
  vid differing = 0;
  for (vid d = 0; d < dims(); ++d) {
    if (coord(a, d) != coord(b, d)) ++differing;
  }
  return differing;
}

}  // namespace fne
