// Random graph families.
//
// random_regular implements the permutation/pairing model and retries
// until the multigraph is simple; for d << sqrt(n) this succeeds in O(1)
// expected attempts and the result is an expander with high probability
// (the paper's Theorems 2.3/3.1 start from exactly such a family).
#pragma once

#include <cstdint>

#include "core/graph.hpp"

namespace fne {

/// Erdős–Rényi G(n, p).
[[nodiscard]] Graph erdos_renyi(vid n, double p, std::uint64_t seed);

/// Random d-regular simple graph (n*d must be even, d < n).
[[nodiscard]] Graph random_regular(vid n, vid d, std::uint64_t seed);

/// Random graph with exactly m distinct edges (the "d·n/2 edges" family
/// from §1.1 with m = d·n/2, for which p* = 1/d).
[[nodiscard]] Graph random_with_edges(vid n, eid m, std::uint64_t seed);

}  // namespace fne
