#include "topology/hypercube.hpp"

#include "util/require.hpp"

namespace fne {

Graph hypercube(vid dims) {
  FNE_REQUIRE(dims >= 1 && dims <= 26, "hypercube dimension must be in [1, 26]");
  const vid n = vid{1} << dims;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dims / 2);
  for (vid v = 0; v < n; ++v) {
    for (vid d = 0; d < dims; ++d) {
      const vid w = v ^ (vid{1} << d);
      if (v < w) edges.push_back({v, w});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace fne
