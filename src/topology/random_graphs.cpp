#include "topology/random_graphs.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

Graph erdos_renyi(vid n, double p, std::uint64_t seed) {
  FNE_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Rng rng(seed);
  std::vector<Edge> edges;
  if (p >= 1.0) {
    for (vid u = 0; u < n; ++u) {
      for (vid v = u + 1; v < n; ++v) edges.push_back({u, v});
    }
    return Graph::from_edges(n, std::move(edges));
  }
  if (p <= 0.0) return Graph::from_edges(n, {});
  // Geometric skipping (Batagelj–Brandes): O(n + m) instead of O(n^2).
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = 1.0 - rng.uniform01();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) edges.push_back({static_cast<vid>(w), static_cast<vid>(v)});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_regular(vid n, vid d, std::uint64_t seed) {
  FNE_REQUIRE(d >= 1 && d < n, "degree must satisfy 1 <= d < n");
  FNE_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0, "n*d must be even");
  Rng rng(seed);
  const std::size_t stubs_count = static_cast<std::size_t>(n) * d;
  std::vector<vid> stubs(stubs_count);
  for (std::size_t i = 0; i < stubs_count; ++i) stubs[i] = static_cast<vid>(i / d);

  // Pairing model with double-edge-swap repair: a plain retry loop has
  // success probability ~exp(-(d-1)/2 - (d-1)^2/4) per attempt, hopeless
  // already for d = 6; instead we pair once and repair the (few) self
  // loops and duplicates by uniformly chosen edge swaps, which preserves
  // the degree sequence and mixes towards the uniform simple graph.
  rng.shuffle(std::span<vid>(stubs));
  const std::size_t m = stubs_count / 2;
  std::vector<Edge> edges(m);
  for (std::size_t i = 0; i < m; ++i) edges[i] = {stubs[2 * i], stubs[2 * i + 1]};

  auto key = [](vid u, vid v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(2 * m);
  // First pass: register simple edges; collect conflicting slots (self
  // loops and duplicate occurrences, which are never registered in seen).
  std::vector<std::size_t> bad;
  std::vector<char> pending(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    if (edges[i].u == edges[i].v || !seen.insert(key(edges[i].u, edges[i].v)).second) {
      bad.push_back(i);
      pending[i] = 1;
    }
  }
  const std::size_t max_repair = 200 * m + 10000;
  std::size_t steps = 0;
  while (!bad.empty()) {
    FNE_REQUIRE(++steps <= max_repair, "edge-swap repair did not converge (d too large?)");
    const std::size_t i = bad.back();
    const std::size_t j = static_cast<std::size_t>(rng.uniform(m));
    // The partner must be a registered good edge (never another pending
    // slot: its key bookkeeping would be corrupted by the swap).
    if (i == j || pending[j]) continue;
    Edge& a = edges[i];
    Edge& b = edges[j];
    const std::uint64_t bkey = key(b.u, b.v);
    // Proposed swap: (a.u, a.v), (b.u, b.v) -> (a.u, b.v), (b.u, a.v).
    const Edge na{a.u, b.v};
    const Edge nb{b.u, a.v};
    if (na.u == na.v || nb.u == nb.v) continue;
    const std::uint64_t ka = key(na.u, na.v);
    const std::uint64_t kb = key(nb.u, nb.v);
    if (ka == kb || seen.count(ka) != 0 || seen.count(kb) != 0) continue;
    seen.erase(bkey);
    seen.insert(ka);
    seen.insert(kb);
    a = na;
    b = nb;
    pending[i] = 0;
    bad.pop_back();
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_with_edges(vid n, eid m, std::uint64_t seed) {
  const std::uint64_t max_m = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  FNE_REQUIRE(m <= max_m, "more edges requested than pairs available");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    vid u = static_cast<vid>(rng.uniform(n));
    vid v = static_cast<vid>(rng.uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) edges.push_back({u, v});
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace fne
