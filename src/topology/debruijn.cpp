#include "topology/debruijn.hpp"

#include "util/require.hpp"

namespace fne {

Graph debruijn(vid dims) {
  FNE_REQUIRE(dims >= 2 && dims <= 26, "de Bruijn dimension must be in [2, 26]");
  const vid n = vid{1} << dims;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (vid v = 0; v < n; ++v) {
    const vid s0 = (v << 1) & (n - 1);
    const vid s1 = s0 | 1;
    if (v != s0) edges.push_back({v, s0});
    if (v != s1) edges.push_back({v, s1});
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace fne
