// d-dimensional meshes and tori (paper §3.3, §4).
//
// A Mesh keeps its side-length vector so coordinate <-> id conversion and
// geometric constructions (the virtual-edge span tree of Theorem 3.6) can
// be expressed in coordinates.
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace fne {

class Mesh {
 public:
  /// sides[i] = number of vertices along dimension i (all >= 1).
  /// wrap = torus (periodic boundary) instead of mesh.
  explicit Mesh(std::vector<vid> sides, bool wrap = false);

  /// The square d-dimensional mesh with side s: s^d vertices.
  [[nodiscard]] static Mesh cube(vid side, vid dims, bool wrap = false);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const std::vector<vid>& sides() const noexcept { return sides_; }
  [[nodiscard]] vid dims() const noexcept { return static_cast<vid>(sides_.size()); }
  [[nodiscard]] bool wraps() const noexcept { return wrap_; }
  [[nodiscard]] vid num_vertices() const noexcept { return graph_.num_vertices(); }

  /// Row-major id of a coordinate vector.
  [[nodiscard]] vid id_of(const std::vector<vid>& coords) const;
  /// Coordinates of a vertex id.
  [[nodiscard]] std::vector<vid> coords_of(vid v) const;
  /// Coordinate along one dimension without materializing the full vector.
  [[nodiscard]] vid coord(vid v, vid dim) const;

  /// Chebyshev (L-infinity) distance between two vertices, respecting wrap.
  [[nodiscard]] vid chebyshev_distance(vid a, vid b) const;
  /// Number of coordinates in which a and b differ.
  [[nodiscard]] vid hamming_dims(vid a, vid b) const;

 private:
  std::vector<vid> sides_;
  std::vector<vid> strides_;
  bool wrap_ = false;
  Graph graph_;
};

}  // namespace fne
