#include "topology/classic.hpp"

#include "util/require.hpp"

namespace fne {

Graph path_graph(vid n) {
  FNE_REQUIRE(n >= 1, "path needs >= 1 vertex");
  std::vector<Edge> edges;
  for (vid v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle_graph(vid n) {
  FNE_REQUIRE(n >= 3, "cycle needs >= 3 vertices");
  std::vector<Edge> edges;
  for (vid v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  edges.push_back({n - 1, 0});
  return Graph::from_edges(n, std::move(edges));
}

Graph complete_graph(vid n) {
  FNE_REQUIRE(n >= 1 && n <= 4096, "complete graph limited to n <= 4096");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (vid u = 0; u < n; ++u) {
    for (vid v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph star_graph(vid n) {
  FNE_REQUIRE(n >= 2, "star needs >= 2 vertices");
  std::vector<Edge> edges;
  for (vid v = 1; v < n; ++v) edges.push_back({0, v});
  return Graph::from_edges(n, std::move(edges));
}

Graph barbell_graph(vid half) {
  FNE_REQUIRE(half >= 2, "barbell halves need >= 2 vertices");
  std::vector<Edge> edges;
  for (vid u = 0; u < half; ++u) {
    for (vid v = u + 1; v < half; ++v) {
      edges.push_back({u, v});
      edges.push_back({half + u, half + v});
    }
  }
  edges.push_back({0, half});
  return Graph::from_edges(2 * half, std::move(edges));
}

}  // namespace fne
