#include "topology/can_overlay.hpp"

#include "util/require.hpp"
#include "util/rng.hpp"

namespace fne {

namespace {

/// Do half-open integer intervals [a, a+la) and [b, b+lb) overlap on a
/// torus of circumference span?
bool torus_overlap(std::uint32_t a, std::uint32_t la, std::uint32_t b, std::uint32_t lb,
                   std::uint32_t span) {
  if (la == span || lb == span) return true;
  // Unwrap: intervals never cross the origin because all bounds are
  // aligned power-of-two splits of [0, span); so plain interval logic works.
  return a < b + lb && b < a + la;
}

/// Do the zones abut along dimension d on the torus (share a (d-1)-face)?
bool torus_abut(std::uint32_t a, std::uint32_t la, std::uint32_t b, std::uint32_t lb,
                std::uint32_t span) {
  const std::uint32_t a_end = (a + la) % span;
  const std::uint32_t b_end = (b + lb) % span;
  return a_end == b || b_end == a;
}

}  // namespace

CanOverlay can_overlay(vid peers, vid dims, std::uint64_t seed, vid max_depth) {
  FNE_REQUIRE(peers >= 1, "need at least one peer");
  FNE_REQUIRE(dims >= 1 && dims <= 10, "CAN dimensions in [1, 10]");
  FNE_REQUIRE(max_depth >= 1 && max_depth <= 30, "max_depth in [1, 30]");
  const std::uint32_t span = std::uint32_t{1} << max_depth;

  CanOverlay overlay;
  overlay.dims = dims;
  overlay.zones.push_back(
      {std::vector<std::uint32_t>(dims, 0), std::vector<std::uint32_t>(dims, span), 0});

  Rng rng(seed);
  while (overlay.zones.size() < peers) {
    // A joining peer hashes to a uniform point; find the owning zone.
    std::vector<std::uint32_t> point(dims);
    for (vid d = 0; d < dims; ++d) point[d] = static_cast<std::uint32_t>(rng.uniform(span));
    std::size_t owner = overlay.zones.size();
    for (std::size_t z = 0; z < overlay.zones.size(); ++z) {
      const CanZone& zone = overlay.zones[z];
      bool inside = true;
      for (vid d = 0; d < dims && inside; ++d) {
        inside = point[d] >= zone.lo[d] && point[d] < zone.lo[d] + zone.size[d];
      }
      if (inside) {
        owner = z;
        break;
      }
    }
    FNE_REQUIRE(owner < overlay.zones.size(), "join point not covered by any zone");

    CanZone& zone = overlay.zones[owner];
    // Find a splittable dimension starting from the zone's cursor.
    vid d = zone.next_split_dim;
    vid tried = 0;
    while (tried < dims && zone.size[d] <= 1) {
      d = (d + 1) % dims;
      ++tried;
    }
    if (zone.size[d] <= 1) {
      // Zone at max resolution: retry with another point (extremely rare
      // unless peers ~ span^dims).
      continue;
    }
    CanZone fresh = zone;
    const std::uint32_t half = zone.size[d] / 2;
    zone.size[d] = half;
    fresh.lo[d] = zone.lo[d] + half;
    fresh.size[d] = half;
    zone.next_split_dim = (d + 1) % dims;
    fresh.next_split_dim = (d + 1) % dims;
    overlay.zones.push_back(std::move(fresh));
  }

  // Zone adjacency: abut in exactly one dimension, overlap in all others.
  std::vector<Edge> edges;
  const vid n = static_cast<vid>(overlay.zones.size());
  for (vid a = 0; a < n; ++a) {
    for (vid b = a + 1; b < n; ++b) {
      const CanZone& za = overlay.zones[a];
      const CanZone& zb = overlay.zones[b];
      int abutting = 0;
      bool neighbor = true;
      for (vid d = 0; d < dims && neighbor; ++d) {
        if (torus_overlap(za.lo[d], za.size[d], zb.lo[d], zb.size[d], span)) {
          continue;
        }
        if (torus_abut(za.lo[d], za.size[d], zb.lo[d], zb.size[d], span)) {
          ++abutting;
        } else {
          neighbor = false;
        }
      }
      if (neighbor && abutting == 1) edges.push_back({a, b});
    }
  }
  overlay.graph = Graph::from_edges(n, std::move(edges));
  return overlay;
}

}  // namespace fne
