file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_emulation.dir/bench/bench_e12_emulation.cpp.o"
  "CMakeFiles/bench_e12_emulation.dir/bench/bench_e12_emulation.cpp.o.d"
  "bench_e12_emulation"
  "bench_e12_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
