# Empty dependencies file for bench_e12_emulation.
# This may be replaced when dependencies are built.
