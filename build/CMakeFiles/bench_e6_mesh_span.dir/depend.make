# Empty dependencies file for bench_e6_mesh_span.
# This may be replaced when dependencies are built.
