file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_mesh_span.dir/bench/bench_e6_mesh_span.cpp.o"
  "CMakeFiles/bench_e6_mesh_span.dir/bench/bench_e6_mesh_span.cpp.o.d"
  "bench_e6_mesh_span"
  "bench_e6_mesh_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_mesh_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
