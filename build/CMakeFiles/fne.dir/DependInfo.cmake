
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/agreement.cpp" "CMakeFiles/fne.dir/src/analysis/agreement.cpp.o" "gcc" "CMakeFiles/fne.dir/src/analysis/agreement.cpp.o.d"
  "/root/repo/src/analysis/distance.cpp" "CMakeFiles/fne.dir/src/analysis/distance.cpp.o" "gcc" "CMakeFiles/fne.dir/src/analysis/distance.cpp.o.d"
  "/root/repo/src/analysis/embedding.cpp" "CMakeFiles/fne.dir/src/analysis/embedding.cpp.o" "gcc" "CMakeFiles/fne.dir/src/analysis/embedding.cpp.o.d"
  "/root/repo/src/analysis/fragmentation.cpp" "CMakeFiles/fne.dir/src/analysis/fragmentation.cpp.o" "gcc" "CMakeFiles/fne.dir/src/analysis/fragmentation.cpp.o.d"
  "/root/repo/src/analysis/load_balance.cpp" "CMakeFiles/fne.dir/src/analysis/load_balance.cpp.o" "gcc" "CMakeFiles/fne.dir/src/analysis/load_balance.cpp.o.d"
  "/root/repo/src/analysis/routing.cpp" "CMakeFiles/fne.dir/src/analysis/routing.cpp.o" "gcc" "CMakeFiles/fne.dir/src/analysis/routing.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "CMakeFiles/fne.dir/src/core/graph.cpp.o" "gcc" "CMakeFiles/fne.dir/src/core/graph.cpp.o.d"
  "/root/repo/src/core/io.cpp" "CMakeFiles/fne.dir/src/core/io.cpp.o" "gcc" "CMakeFiles/fne.dir/src/core/io.cpp.o.d"
  "/root/repo/src/core/subgraph.cpp" "CMakeFiles/fne.dir/src/core/subgraph.cpp.o" "gcc" "CMakeFiles/fne.dir/src/core/subgraph.cpp.o.d"
  "/root/repo/src/core/traversal.cpp" "CMakeFiles/fne.dir/src/core/traversal.cpp.o" "gcc" "CMakeFiles/fne.dir/src/core/traversal.cpp.o.d"
  "/root/repo/src/core/vertex_set.cpp" "CMakeFiles/fne.dir/src/core/vertex_set.cpp.o" "gcc" "CMakeFiles/fne.dir/src/core/vertex_set.cpp.o.d"
  "/root/repo/src/expansion/bfs_ball.cpp" "CMakeFiles/fne.dir/src/expansion/bfs_ball.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/bfs_ball.cpp.o.d"
  "/root/repo/src/expansion/bracket.cpp" "CMakeFiles/fne.dir/src/expansion/bracket.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/bracket.cpp.o.d"
  "/root/repo/src/expansion/cut_finder.cpp" "CMakeFiles/fne.dir/src/expansion/cut_finder.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/cut_finder.cpp.o.d"
  "/root/repo/src/expansion/exact.cpp" "CMakeFiles/fne.dir/src/expansion/exact.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/exact.cpp.o.d"
  "/root/repo/src/expansion/flow.cpp" "CMakeFiles/fne.dir/src/expansion/flow.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/flow.cpp.o.d"
  "/root/repo/src/expansion/local_search.cpp" "CMakeFiles/fne.dir/src/expansion/local_search.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/local_search.cpp.o.d"
  "/root/repo/src/expansion/profile.cpp" "CMakeFiles/fne.dir/src/expansion/profile.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/profile.cpp.o.d"
  "/root/repo/src/expansion/sweep.cpp" "CMakeFiles/fne.dir/src/expansion/sweep.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/sweep.cpp.o.d"
  "/root/repo/src/expansion/uniform.cpp" "CMakeFiles/fne.dir/src/expansion/uniform.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/uniform.cpp.o.d"
  "/root/repo/src/expansion/workspace.cpp" "CMakeFiles/fne.dir/src/expansion/workspace.cpp.o" "gcc" "CMakeFiles/fne.dir/src/expansion/workspace.cpp.o.d"
  "/root/repo/src/faults/adversary.cpp" "CMakeFiles/fne.dir/src/faults/adversary.cpp.o" "gcc" "CMakeFiles/fne.dir/src/faults/adversary.cpp.o.d"
  "/root/repo/src/faults/churn.cpp" "CMakeFiles/fne.dir/src/faults/churn.cpp.o" "gcc" "CMakeFiles/fne.dir/src/faults/churn.cpp.o.d"
  "/root/repo/src/faults/fault_model.cpp" "CMakeFiles/fne.dir/src/faults/fault_model.cpp.o" "gcc" "CMakeFiles/fne.dir/src/faults/fault_model.cpp.o.d"
  "/root/repo/src/percolation/cluster_stats.cpp" "CMakeFiles/fne.dir/src/percolation/cluster_stats.cpp.o" "gcc" "CMakeFiles/fne.dir/src/percolation/cluster_stats.cpp.o.d"
  "/root/repo/src/percolation/critical.cpp" "CMakeFiles/fne.dir/src/percolation/critical.cpp.o" "gcc" "CMakeFiles/fne.dir/src/percolation/critical.cpp.o.d"
  "/root/repo/src/percolation/percolation.cpp" "CMakeFiles/fne.dir/src/percolation/percolation.cpp.o" "gcc" "CMakeFiles/fne.dir/src/percolation/percolation.cpp.o.d"
  "/root/repo/src/prune/compact.cpp" "CMakeFiles/fne.dir/src/prune/compact.cpp.o" "gcc" "CMakeFiles/fne.dir/src/prune/compact.cpp.o.d"
  "/root/repo/src/prune/engine.cpp" "CMakeFiles/fne.dir/src/prune/engine.cpp.o" "gcc" "CMakeFiles/fne.dir/src/prune/engine.cpp.o.d"
  "/root/repo/src/prune/prune.cpp" "CMakeFiles/fne.dir/src/prune/prune.cpp.o" "gcc" "CMakeFiles/fne.dir/src/prune/prune.cpp.o.d"
  "/root/repo/src/prune/prune2.cpp" "CMakeFiles/fne.dir/src/prune/prune2.cpp.o" "gcc" "CMakeFiles/fne.dir/src/prune/prune2.cpp.o.d"
  "/root/repo/src/prune/upfal.cpp" "CMakeFiles/fne.dir/src/prune/upfal.cpp.o" "gcc" "CMakeFiles/fne.dir/src/prune/upfal.cpp.o.d"
  "/root/repo/src/prune/verify.cpp" "CMakeFiles/fne.dir/src/prune/verify.cpp.o" "gcc" "CMakeFiles/fne.dir/src/prune/verify.cpp.o.d"
  "/root/repo/src/span/compact_sets.cpp" "CMakeFiles/fne.dir/src/span/compact_sets.cpp.o" "gcc" "CMakeFiles/fne.dir/src/span/compact_sets.cpp.o.d"
  "/root/repo/src/span/mesh_span.cpp" "CMakeFiles/fne.dir/src/span/mesh_span.cpp.o" "gcc" "CMakeFiles/fne.dir/src/span/mesh_span.cpp.o.d"
  "/root/repo/src/span/span.cpp" "CMakeFiles/fne.dir/src/span/span.cpp.o" "gcc" "CMakeFiles/fne.dir/src/span/span.cpp.o.d"
  "/root/repo/src/span/steiner.cpp" "CMakeFiles/fne.dir/src/span/steiner.cpp.o" "gcc" "CMakeFiles/fne.dir/src/span/steiner.cpp.o.d"
  "/root/repo/src/spectral/cheeger.cpp" "CMakeFiles/fne.dir/src/spectral/cheeger.cpp.o" "gcc" "CMakeFiles/fne.dir/src/spectral/cheeger.cpp.o.d"
  "/root/repo/src/spectral/expander_certificate.cpp" "CMakeFiles/fne.dir/src/spectral/expander_certificate.cpp.o" "gcc" "CMakeFiles/fne.dir/src/spectral/expander_certificate.cpp.o.d"
  "/root/repo/src/spectral/fiedler.cpp" "CMakeFiles/fne.dir/src/spectral/fiedler.cpp.o" "gcc" "CMakeFiles/fne.dir/src/spectral/fiedler.cpp.o.d"
  "/root/repo/src/spectral/jacobi.cpp" "CMakeFiles/fne.dir/src/spectral/jacobi.cpp.o" "gcc" "CMakeFiles/fne.dir/src/spectral/jacobi.cpp.o.d"
  "/root/repo/src/spectral/lanczos.cpp" "CMakeFiles/fne.dir/src/spectral/lanczos.cpp.o" "gcc" "CMakeFiles/fne.dir/src/spectral/lanczos.cpp.o.d"
  "/root/repo/src/spectral/tridiag.cpp" "CMakeFiles/fne.dir/src/spectral/tridiag.cpp.o" "gcc" "CMakeFiles/fne.dir/src/spectral/tridiag.cpp.o.d"
  "/root/repo/src/topology/butterfly.cpp" "CMakeFiles/fne.dir/src/topology/butterfly.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/butterfly.cpp.o.d"
  "/root/repo/src/topology/can_overlay.cpp" "CMakeFiles/fne.dir/src/topology/can_overlay.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/can_overlay.cpp.o.d"
  "/root/repo/src/topology/chain_expander.cpp" "CMakeFiles/fne.dir/src/topology/chain_expander.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/chain_expander.cpp.o.d"
  "/root/repo/src/topology/classic.cpp" "CMakeFiles/fne.dir/src/topology/classic.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/classic.cpp.o.d"
  "/root/repo/src/topology/debruijn.cpp" "CMakeFiles/fne.dir/src/topology/debruijn.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/debruijn.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "CMakeFiles/fne.dir/src/topology/hypercube.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/hypercube.cpp.o.d"
  "/root/repo/src/topology/mesh.cpp" "CMakeFiles/fne.dir/src/topology/mesh.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/mesh.cpp.o.d"
  "/root/repo/src/topology/multibutterfly.cpp" "CMakeFiles/fne.dir/src/topology/multibutterfly.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/multibutterfly.cpp.o.d"
  "/root/repo/src/topology/random_graphs.cpp" "CMakeFiles/fne.dir/src/topology/random_graphs.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/random_graphs.cpp.o.d"
  "/root/repo/src/topology/shuffle_exchange.cpp" "CMakeFiles/fne.dir/src/topology/shuffle_exchange.cpp.o" "gcc" "CMakeFiles/fne.dir/src/topology/shuffle_exchange.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/fne.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/fne.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/fne.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/fne.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/fne.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/fne.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/fne.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/fne.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
