# Empty dependencies file for fne.
# This may be replaced when dependencies are built.
