file(REMOVE_RECURSE
  "libfne.a"
)
