file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_span_conjecture.dir/bench/bench_e8_span_conjecture.cpp.o"
  "CMakeFiles/bench_e8_span_conjecture.dir/bench/bench_e8_span_conjecture.cpp.o.d"
  "bench_e8_span_conjecture"
  "bench_e8_span_conjecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_span_conjecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
