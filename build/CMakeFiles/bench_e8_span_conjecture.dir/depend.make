# Empty dependencies file for bench_e8_span_conjecture.
# This may be replaced when dependencies are built.
