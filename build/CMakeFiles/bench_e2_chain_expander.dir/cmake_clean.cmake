file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_chain_expander.dir/bench/bench_e2_chain_expander.cpp.o"
  "CMakeFiles/bench_e2_chain_expander.dir/bench/bench_e2_chain_expander.cpp.o.d"
  "bench_e2_chain_expander"
  "bench_e2_chain_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_chain_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
