# Empty dependencies file for bench_e2_chain_expander.
# This may be replaced when dependencies are built.
