file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_adversarial_prune.dir/bench/bench_e1_adversarial_prune.cpp.o"
  "CMakeFiles/bench_e1_adversarial_prune.dir/bench/bench_e1_adversarial_prune.cpp.o.d"
  "bench_e1_adversarial_prune"
  "bench_e1_adversarial_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_adversarial_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
