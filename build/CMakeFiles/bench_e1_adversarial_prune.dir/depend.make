# Empty dependencies file for bench_e1_adversarial_prune.
# This may be replaced when dependencies are built.
