file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_percolation_thresholds.dir/bench/bench_e7_percolation_thresholds.cpp.o"
  "CMakeFiles/bench_e7_percolation_thresholds.dir/bench/bench_e7_percolation_thresholds.cpp.o.d"
  "bench_e7_percolation_thresholds"
  "bench_e7_percolation_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_percolation_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
