# Empty dependencies file for bench_e7_percolation_thresholds.
# This may be replaced when dependencies are built.
