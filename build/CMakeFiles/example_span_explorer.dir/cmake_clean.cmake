file(REMOVE_RECURSE
  "CMakeFiles/example_span_explorer.dir/examples/span_explorer.cpp.o"
  "CMakeFiles/example_span_explorer.dir/examples/span_explorer.cpp.o.d"
  "example_span_explorer"
  "example_span_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_span_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
