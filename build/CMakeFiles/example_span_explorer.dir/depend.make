# Empty dependencies file for example_span_explorer.
# This may be replaced when dependencies are built.
