# Empty dependencies file for bench_a2_compactify_ablation.
# This may be replaced when dependencies are built.
