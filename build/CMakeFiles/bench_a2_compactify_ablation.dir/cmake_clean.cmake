file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_compactify_ablation.dir/bench/bench_a2_compactify_ablation.cpp.o"
  "CMakeFiles/bench_a2_compactify_ablation.dir/bench/bench_a2_compactify_ablation.cpp.o.d"
  "bench_a2_compactify_ablation"
  "bench_a2_compactify_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_compactify_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
