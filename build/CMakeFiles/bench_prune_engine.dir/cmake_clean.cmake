file(REMOVE_RECURSE
  "CMakeFiles/bench_prune_engine.dir/bench/bench_prune_engine.cpp.o"
  "CMakeFiles/bench_prune_engine.dir/bench/bench_prune_engine.cpp.o.d"
  "bench_prune_engine"
  "bench_prune_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prune_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
