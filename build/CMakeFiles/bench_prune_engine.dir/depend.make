# Empty dependencies file for bench_prune_engine.
# This may be replaced when dependencies are built.
