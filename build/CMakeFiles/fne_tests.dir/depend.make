# Empty dependencies file for fne_tests.
# This may be replaced when dependencies are built.
