
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agreement.cpp" "CMakeFiles/fne_tests.dir/tests/test_agreement.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_agreement.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "CMakeFiles/fne_tests.dir/tests/test_analysis.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_analysis.cpp.o.d"
  "/root/repo/tests/test_can_overlay.cpp" "CMakeFiles/fne_tests.dir/tests/test_can_overlay.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_can_overlay.cpp.o.d"
  "/root/repo/tests/test_chain_expander.cpp" "CMakeFiles/fne_tests.dir/tests/test_chain_expander.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_chain_expander.cpp.o.d"
  "/root/repo/tests/test_churn_clusters.cpp" "CMakeFiles/fne_tests.dir/tests/test_churn_clusters.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_churn_clusters.cpp.o.d"
  "/root/repo/tests/test_compact_sets.cpp" "CMakeFiles/fne_tests.dir/tests/test_compact_sets.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_compact_sets.cpp.o.d"
  "/root/repo/tests/test_compactify.cpp" "CMakeFiles/fne_tests.dir/tests/test_compactify.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_compactify.cpp.o.d"
  "/root/repo/tests/test_cut_finder.cpp" "CMakeFiles/fne_tests.dir/tests/test_cut_finder.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_cut_finder.cpp.o.d"
  "/root/repo/tests/test_dot_export.cpp" "CMakeFiles/fne_tests.dir/tests/test_dot_export.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_dot_export.cpp.o.d"
  "/root/repo/tests/test_eigensolvers.cpp" "CMakeFiles/fne_tests.dir/tests/test_eigensolvers.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_eigensolvers.cpp.o.d"
  "/root/repo/tests/test_embedding.cpp" "CMakeFiles/fne_tests.dir/tests/test_embedding.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_embedding.cpp.o.d"
  "/root/repo/tests/test_exact_expansion.cpp" "CMakeFiles/fne_tests.dir/tests/test_exact_expansion.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_exact_expansion.cpp.o.d"
  "/root/repo/tests/test_expander_certificate.cpp" "CMakeFiles/fne_tests.dir/tests/test_expander_certificate.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_expander_certificate.cpp.o.d"
  "/root/repo/tests/test_expansion_heuristics.cpp" "CMakeFiles/fne_tests.dir/tests/test_expansion_heuristics.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_expansion_heuristics.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "CMakeFiles/fne_tests.dir/tests/test_faults.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_faults.cpp.o.d"
  "/root/repo/tests/test_fiedler.cpp" "CMakeFiles/fne_tests.dir/tests/test_fiedler.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_fiedler.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "CMakeFiles/fne_tests.dir/tests/test_flow.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_flow.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "CMakeFiles/fne_tests.dir/tests/test_graph.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/fne_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_load_balance.cpp" "CMakeFiles/fne_tests.dir/tests/test_load_balance.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_load_balance.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "CMakeFiles/fne_tests.dir/tests/test_mesh.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_mesh.cpp.o.d"
  "/root/repo/tests/test_mesh_span.cpp" "CMakeFiles/fne_tests.dir/tests/test_mesh_span.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_mesh_span.cpp.o.d"
  "/root/repo/tests/test_multibutterfly.cpp" "CMakeFiles/fne_tests.dir/tests/test_multibutterfly.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_multibutterfly.cpp.o.d"
  "/root/repo/tests/test_networks.cpp" "CMakeFiles/fne_tests.dir/tests/test_networks.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_networks.cpp.o.d"
  "/root/repo/tests/test_percolation.cpp" "CMakeFiles/fne_tests.dir/tests/test_percolation.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_percolation.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "CMakeFiles/fne_tests.dir/tests/test_profile.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_profile.cpp.o.d"
  "/root/repo/tests/test_properties_expansion.cpp" "CMakeFiles/fne_tests.dir/tests/test_properties_expansion.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_properties_expansion.cpp.o.d"
  "/root/repo/tests/test_properties_percolation.cpp" "CMakeFiles/fne_tests.dir/tests/test_properties_percolation.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_properties_percolation.cpp.o.d"
  "/root/repo/tests/test_properties_prune.cpp" "CMakeFiles/fne_tests.dir/tests/test_properties_prune.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_properties_prune.cpp.o.d"
  "/root/repo/tests/test_properties_span.cpp" "CMakeFiles/fne_tests.dir/tests/test_properties_span.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_properties_span.cpp.o.d"
  "/root/repo/tests/test_prune2_algorithm.cpp" "CMakeFiles/fne_tests.dir/tests/test_prune2_algorithm.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_prune2_algorithm.cpp.o.d"
  "/root/repo/tests/test_prune_algorithm.cpp" "CMakeFiles/fne_tests.dir/tests/test_prune_algorithm.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_prune_algorithm.cpp.o.d"
  "/root/repo/tests/test_prune_engine.cpp" "CMakeFiles/fne_tests.dir/tests/test_prune_engine.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_prune_engine.cpp.o.d"
  "/root/repo/tests/test_random_graphs.cpp" "CMakeFiles/fne_tests.dir/tests/test_random_graphs.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_random_graphs.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "CMakeFiles/fne_tests.dir/tests/test_rng.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing_upfal.cpp" "CMakeFiles/fne_tests.dir/tests/test_routing_upfal.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_routing_upfal.cpp.o.d"
  "/root/repo/tests/test_span_estimation.cpp" "CMakeFiles/fne_tests.dir/tests/test_span_estimation.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_span_estimation.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "CMakeFiles/fne_tests.dir/tests/test_stats.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_stats.cpp.o.d"
  "/root/repo/tests/test_steiner.cpp" "CMakeFiles/fne_tests.dir/tests/test_steiner.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_steiner.cpp.o.d"
  "/root/repo/tests/test_subgraph.cpp" "CMakeFiles/fne_tests.dir/tests/test_subgraph.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_subgraph.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "CMakeFiles/fne_tests.dir/tests/test_table.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_table.cpp.o.d"
  "/root/repo/tests/test_traversal.cpp" "CMakeFiles/fne_tests.dir/tests/test_traversal.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_traversal.cpp.o.d"
  "/root/repo/tests/test_vertex_set.cpp" "CMakeFiles/fne_tests.dir/tests/test_vertex_set.cpp.o" "gcc" "CMakeFiles/fne_tests.dir/tests/test_vertex_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/fne.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
