# Empty dependencies file for bench_e3_uniform_shatter.
# This may be replaced when dependencies are built.
