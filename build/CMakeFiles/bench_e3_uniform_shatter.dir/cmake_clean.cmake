file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_uniform_shatter.dir/bench/bench_e3_uniform_shatter.cpp.o"
  "CMakeFiles/bench_e3_uniform_shatter.dir/bench/bench_e3_uniform_shatter.cpp.o.d"
  "bench_e3_uniform_shatter"
  "bench_e3_uniform_shatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_uniform_shatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
