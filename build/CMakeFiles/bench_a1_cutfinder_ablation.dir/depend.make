# Empty dependencies file for bench_a1_cutfinder_ablation.
# This may be replaced when dependencies are built.
