file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_steiner_ablation.dir/bench/bench_a3_steiner_ablation.cpp.o"
  "CMakeFiles/bench_a3_steiner_ablation.dir/bench/bench_a3_steiner_ablation.cpp.o.d"
  "bench_a3_steiner_ablation"
  "bench_a3_steiner_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_steiner_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
