# Empty dependencies file for bench_a3_steiner_ablation.
# This may be replaced when dependencies are built.
