# Empty dependencies file for bench_a4_upfal_baseline.
# This may be replaced when dependencies are built.
