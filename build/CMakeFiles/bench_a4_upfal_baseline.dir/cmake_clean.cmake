file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_upfal_baseline.dir/bench/bench_a4_upfal_baseline.cpp.o"
  "CMakeFiles/bench_a4_upfal_baseline.dir/bench/bench_a4_upfal_baseline.cpp.o.d"
  "bench_a4_upfal_baseline"
  "bench_a4_upfal_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_upfal_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
