file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_random_prune2.dir/bench/bench_e5_random_prune2.cpp.o"
  "CMakeFiles/bench_e5_random_prune2.dir/bench/bench_e5_random_prune2.cpp.o.d"
  "bench_e5_random_prune2"
  "bench_e5_random_prune2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_random_prune2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
