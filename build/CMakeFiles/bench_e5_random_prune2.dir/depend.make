# Empty dependencies file for bench_e5_random_prune2.
# This may be replaced when dependencies are built.
