file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_subgraph_count.dir/bench/bench_e10_subgraph_count.cpp.o"
  "CMakeFiles/bench_e10_subgraph_count.dir/bench/bench_e10_subgraph_count.cpp.o.d"
  "bench_e10_subgraph_count"
  "bench_e10_subgraph_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_subgraph_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
