# Empty dependencies file for bench_e10_subgraph_count.
# This may be replaced when dependencies are built.
