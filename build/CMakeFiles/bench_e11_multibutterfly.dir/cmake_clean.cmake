file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_multibutterfly.dir/bench/bench_e11_multibutterfly.cpp.o"
  "CMakeFiles/bench_e11_multibutterfly.dir/bench/bench_e11_multibutterfly.cpp.o.d"
  "bench_e11_multibutterfly"
  "bench_e11_multibutterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_multibutterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
