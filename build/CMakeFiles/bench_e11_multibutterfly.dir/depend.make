# Empty dependencies file for bench_e11_multibutterfly.
# This may be replaced when dependencies are built.
