# Empty dependencies file for bench_e4_random_chain.
# This may be replaced when dependencies are built.
