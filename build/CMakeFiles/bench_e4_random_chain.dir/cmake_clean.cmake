file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_random_chain.dir/bench/bench_e4_random_chain.cpp.o"
  "CMakeFiles/bench_e4_random_chain.dir/bench/bench_e4_random_chain.cpp.o.d"
  "bench_e4_random_chain"
  "bench_e4_random_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_random_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
