# Empty dependencies file for bench_s1_applications.
# This may be replaced when dependencies are built.
