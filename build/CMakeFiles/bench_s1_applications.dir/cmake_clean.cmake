file(REMOVE_RECURSE
  "CMakeFiles/bench_s1_applications.dir/bench/bench_s1_applications.cpp.o"
  "CMakeFiles/bench_s1_applications.dir/bench/bench_s1_applications.cpp.o.d"
  "bench_s1_applications"
  "bench_s1_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
