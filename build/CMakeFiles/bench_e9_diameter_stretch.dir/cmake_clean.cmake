file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_diameter_stretch.dir/bench/bench_e9_diameter_stretch.cpp.o"
  "CMakeFiles/bench_e9_diameter_stretch.dir/bench/bench_e9_diameter_stretch.cpp.o.d"
  "bench_e9_diameter_stretch"
  "bench_e9_diameter_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_diameter_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
