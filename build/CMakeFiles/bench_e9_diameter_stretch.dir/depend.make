# Empty dependencies file for bench_e9_diameter_stretch.
# This may be replaced when dependencies are built.
