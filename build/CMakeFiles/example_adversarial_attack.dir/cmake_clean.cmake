file(REMOVE_RECURSE
  "CMakeFiles/example_adversarial_attack.dir/examples/adversarial_attack.cpp.o"
  "CMakeFiles/example_adversarial_attack.dir/examples/adversarial_attack.cpp.o.d"
  "example_adversarial_attack"
  "example_adversarial_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adversarial_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
