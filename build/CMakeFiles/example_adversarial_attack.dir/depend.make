# Empty dependencies file for example_adversarial_attack.
# This may be replaced when dependencies are built.
