# Empty dependencies file for example_p2p_can.
# This may be replaced when dependencies are built.
