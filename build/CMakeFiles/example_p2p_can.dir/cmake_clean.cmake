file(REMOVE_RECURSE
  "CMakeFiles/example_p2p_can.dir/examples/p2p_can.cpp.o"
  "CMakeFiles/example_p2p_can.dir/examples/p2p_can.cpp.o.d"
  "example_p2p_can"
  "example_p2p_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_p2p_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
